package topology

import (
	"math"
	"testing"
	"testing/quick"

	"edgecachegroups/internal/simrand"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultTransitStubParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestParamsValidation(t *testing.T) {
	base := DefaultTransitStubParams()
	tests := []struct {
		name   string
		mutate func(*TransitStubParams)
	}{
		{"no transit domains", func(p *TransitStubParams) { p.TransitDomains = 0 }},
		{"no transit nodes", func(p *TransitStubParams) { p.TransitNodesPerDomain = 0 }},
		{"negative stub domains", func(p *TransitStubParams) { p.StubDomainsPerTransitNode = -1 }},
		{"no stub nodes", func(p *TransitStubParams) { p.StubNodesPerDomain = 0 }},
		{"zero rtt", func(p *TransitStubParams) { p.IntraStubRTT = 0 }},
		{"negative rtt", func(p *TransitStubParams) { p.TransitTransitRTT = -5 }},
		{"jitter too big", func(p *TransitStubParams) { p.Jitter = 1 }},
		{"jitter negative", func(p *TransitStubParams) { p.Jitter = -0.1 }},
		{"bad intra prob", func(p *TransitStubParams) { p.ExtraIntraDomainEdgeProb = 1.5 }},
		{"bad transit prob", func(p *TransitStubParams) { p.ExtraTransitPairProb = -0.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("expected validation error, got nil")
			}
		})
	}
}

func TestStubNodeCount(t *testing.T) {
	p := DefaultTransitStubParams()
	want := 4 * 4 * 4 * 12
	if got := p.StubNodeCount(); got != want {
		t.Fatalf("StubNodeCount = %d, want %d", got, want)
	}
}

func TestGenerateTransitStubStructure(t *testing.T) {
	p := DefaultTransitStubParams()
	g, err := GenerateTransitStub(p, simrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	wantTransit := p.TransitDomains * p.TransitNodesPerDomain
	wantStub := p.StubNodeCount()
	if got := len(g.NodesOfKind(KindTransit)); got != wantTransit {
		t.Fatalf("transit nodes = %d, want %d", got, wantTransit)
	}
	if got := len(g.NodesOfKind(KindStub)); got != wantStub {
		t.Fatalf("stub nodes = %d, want %d", got, wantStub)
	}
	if !g.IsConnected() {
		t.Fatal("generated topology is disconnected")
	}
}

func TestGenerateTransitStubDeterministic(t *testing.T) {
	p := DefaultTransitStubParams()
	g1, err := GenerateTransitStub(p, simrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GenerateTransitStub(p, simrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed produced different topologies: %d/%d nodes, %d/%d edges",
			g1.NumNodes(), g2.NumNodes(), g1.NumEdges(), g2.NumEdges())
	}
	// Spot-check edge weights between a sample of node pairs.
	d1, err := g1.ShortestPaths(0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := g2.ShortestPaths(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("distance to node %d differs: %v vs %v", i, d1[i], d2[i])
		}
	}
}

func TestGenerateTransitStubRejectsBadParams(t *testing.T) {
	p := DefaultTransitStubParams()
	p.TransitDomains = 0
	if _, err := GenerateTransitStub(p, simrand.New(1)); err == nil {
		t.Fatal("expected error for invalid params")
	}
}

func TestGenerateSingleDomain(t *testing.T) {
	p := TransitStubParams{
		TransitDomains:            1,
		TransitNodesPerDomain:     2,
		StubDomainsPerTransitNode: 1,
		StubNodesPerDomain:        3,
		TransitTransitRTT:         90,
		IntraTransitRTT:           20,
		TransitStubRTT:            10,
		IntraStubRTT:              2,
		Jitter:                    0,
	}
	g, err := GenerateTransitStub(p, simrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("single-domain topology disconnected")
	}
	if got := g.NumNodes(); got != 2+2*3 {
		t.Fatalf("NumNodes = %d, want 8", got)
	}
}

// TestLatencyLocality verifies the property that makes landmark quality
// matter: intra-stub-domain RTTs are much smaller than cross-backbone RTTs.
func TestLatencyLocality(t *testing.T) {
	p := DefaultTransitStubParams()
	src := simrand.New(5)
	g, err := GenerateTransitStub(p, src)
	if err != nil {
		t.Fatal(err)
	}
	stubs := g.NodesOfKind(KindStub)
	byDomain := make(map[int][]NodeID)
	for _, id := range stubs {
		n, err := g.Node(id)
		if err != nil {
			t.Fatal(err)
		}
		byDomain[n.Domain] = append(byDomain[n.Domain], id)
	}

	// Mean intra-domain RTT for one stub domain vs mean RTT to a stub in a
	// different transit region.
	var sample []NodeID
	for _, nodes := range byDomain {
		sample = nodes
		break
	}
	dist, err := g.ShortestPaths(sample[0])
	if err != nil {
		t.Fatal(err)
	}
	var intraSum float64
	for _, id := range sample[1:] {
		intraSum += dist[int(id)]
	}
	intraMean := intraSum / float64(len(sample)-1)

	var globalSum float64
	var globalCount int
	for _, id := range stubs {
		if d := dist[int(id)]; !math.IsInf(d, 1) && d > 0 {
			globalSum += d
			globalCount++
		}
	}
	globalMean := globalSum / float64(globalCount)

	if intraMean*3 > globalMean {
		t.Fatalf("locality too weak: intra-domain mean %v, global mean %v", intraMean, globalMean)
	}
}

// TestTriangleInequalityProperty: shortest-path distances always satisfy the
// triangle inequality.
func TestTriangleInequalityProperty(t *testing.T) {
	p := TransitStubParams{
		TransitDomains:            2,
		TransitNodesPerDomain:     2,
		StubDomainsPerTransitNode: 2,
		StubNodesPerDomain:        4,
		TransitTransitRTT:         80,
		IntraTransitRTT:           20,
		TransitStubRTT:            10,
		IntraStubRTT:              3,
		Jitter:                    0.2,
		ExtraIntraDomainEdgeProb:  0.3,
		ExtraTransitPairProb:      0.3,
	}
	f := func(seed int64) bool {
		g, err := GenerateTransitStub(p, simrand.New(seed))
		if err != nil {
			return false
		}
		n := g.NumNodes()
		srcs := make([]NodeID, n)
		for i := range srcs {
			srcs[i] = NodeID(i)
		}
		d, err := g.ShortestPathsMulti(srcs)
		if err != nil {
			return false
		}
		const eps = 1e-9
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(d[i][j]-d[j][i]) > eps {
					return false // symmetry
				}
				for k := 0; k < n; k++ {
					if d[i][j] > d[i][k]+d[k][j]+eps {
						return false // triangle inequality
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}
