package topology

import (
	"fmt"

	"edgecachegroups/internal/simrand"
)

// TransitStubParams configures the hierarchical transit-stub topology
// generator. The structure follows the GT-ITM transit-stub model: a small
// core of interconnected transit domains, each transit node anchoring a
// number of stub domains whose nodes represent edge networks.
//
// All latencies are one-way-pair RTT contributions in milliseconds; the
// generated edge weights already represent RTT, so a shortest path equals
// the end-to-end RTT.
type TransitStubParams struct {
	// TransitDomains is the number of backbone domains.
	TransitDomains int
	// TransitNodesPerDomain is the number of routers per backbone domain.
	TransitNodesPerDomain int
	// StubDomainsPerTransitNode is the number of stub (edge) domains hanging
	// off each transit router.
	StubDomainsPerTransitNode int
	// StubNodesPerDomain is the number of routers per stub domain.
	StubNodesPerDomain int

	// TransitTransitRTT is the mean RTT of an inter-domain backbone link.
	TransitTransitRTT float64
	// IntraTransitRTT is the mean RTT of a link inside a backbone domain.
	IntraTransitRTT float64
	// TransitStubRTT is the mean RTT of a stub-domain gateway link.
	TransitStubRTT float64
	// IntraStubRTT is the mean RTT of a link inside a stub domain.
	IntraStubRTT float64
	// Jitter is the fractional latency spread: each link RTT is drawn
	// uniformly from mean*(1±Jitter). Must lie in [0, 1).
	Jitter float64

	// ExtraIntraDomainEdgeProb adds redundant intra-domain edges beyond the
	// connecting spanning tree with this per-pair probability.
	ExtraIntraDomainEdgeProb float64
	// ExtraTransitPairProb adds redundant inter-domain backbone links with
	// this per-domain-pair probability (beyond the connecting ring).
	ExtraTransitPairProb float64
}

// DefaultTransitStubParams returns the configuration used throughout the
// experiments: 4 transit domains x 4 routers, 4 stub domains per transit
// router x 12 routers, for 16 transit + 768 stub nodes. Latency constants
// follow common GT-ITM practice (backbone links dominate).
func DefaultTransitStubParams() TransitStubParams {
	return TransitStubParams{
		TransitDomains:            4,
		TransitNodesPerDomain:     4,
		StubDomainsPerTransitNode: 4,
		StubNodesPerDomain:        12,
		TransitTransitRTT:         90,
		IntraTransitRTT:           25,
		TransitStubRTT:            12,
		IntraStubRTT:              3,
		Jitter:                    0.25,
		ExtraIntraDomainEdgeProb:  0.2,
		ExtraTransitPairProb:      0.3,
	}
}

// Validate reports whether the parameters describe a generable topology.
func (p TransitStubParams) Validate() error {
	switch {
	case p.TransitDomains < 1:
		return fmt.Errorf("topology: TransitDomains must be >= 1, got %d", p.TransitDomains)
	case p.TransitNodesPerDomain < 1:
		return fmt.Errorf("topology: TransitNodesPerDomain must be >= 1, got %d", p.TransitNodesPerDomain)
	case p.StubDomainsPerTransitNode < 0:
		return fmt.Errorf("topology: StubDomainsPerTransitNode must be >= 0, got %d", p.StubDomainsPerTransitNode)
	case p.StubNodesPerDomain < 1 && p.StubDomainsPerTransitNode > 0:
		return fmt.Errorf("topology: StubNodesPerDomain must be >= 1, got %d", p.StubNodesPerDomain)
	case p.TransitTransitRTT <= 0 || p.IntraTransitRTT <= 0 || p.TransitStubRTT <= 0 || p.IntraStubRTT <= 0:
		return fmt.Errorf("topology: all RTT means must be > 0")
	case p.Jitter < 0 || p.Jitter >= 1:
		return fmt.Errorf("topology: Jitter must be in [0,1), got %v", p.Jitter)
	case p.ExtraIntraDomainEdgeProb < 0 || p.ExtraIntraDomainEdgeProb > 1:
		return fmt.Errorf("topology: ExtraIntraDomainEdgeProb must be in [0,1], got %v", p.ExtraIntraDomainEdgeProb)
	case p.ExtraTransitPairProb < 0 || p.ExtraTransitPairProb > 1:
		return fmt.Errorf("topology: ExtraTransitPairProb must be in [0,1], got %v", p.ExtraTransitPairProb)
	}
	return nil
}

// StubNodeCount returns the total number of stub nodes the parameters
// produce.
func (p TransitStubParams) StubNodeCount() int {
	return p.TransitDomains * p.TransitNodesPerDomain * p.StubDomainsPerTransitNode * p.StubNodesPerDomain
}

// GenerateTransitStub builds a connected transit-stub topology from params
// using the deterministic source src.
func GenerateTransitStub(params TransitStubParams, src *simrand.Source) (*Graph, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	g := NewGraph()
	lat := func(mean float64) float64 {
		return src.Uniform(mean*(1-params.Jitter), mean*(1+params.Jitter))
	}

	// 1. Transit domains.
	transitDomains := make([][]NodeID, params.TransitDomains)
	for d := 0; d < params.TransitDomains; d++ {
		nodes := make([]NodeID, params.TransitNodesPerDomain)
		for i := range nodes {
			nodes[i] = g.AddNode(KindTransit, d)
		}
		if err := connectDomain(g, nodes, params.IntraTransitRTT, params.ExtraIntraDomainEdgeProb, lat, src); err != nil {
			return nil, fmt.Errorf("transit domain %d: %w", d, err)
		}
		transitDomains[d] = nodes
	}

	// 2. Inter-domain backbone: a ring guarantees connectivity, random
	// extra domain pairs add path diversity.
	for d := 0; d < params.TransitDomains; d++ {
		next := (d + 1) % params.TransitDomains
		if next == d {
			break // single domain: no inter-domain links
		}
		a := transitDomains[d][src.Intn(len(transitDomains[d]))]
		b := transitDomains[next][src.Intn(len(transitDomains[next]))]
		if err := addEdgeIfAbsent(g, a, b, lat(params.TransitTransitRTT)); err != nil {
			return nil, err
		}
	}
	for d1 := 0; d1 < params.TransitDomains; d1++ {
		for d2 := d1 + 1; d2 < params.TransitDomains; d2++ {
			if src.Float64() >= params.ExtraTransitPairProb {
				continue
			}
			a := transitDomains[d1][src.Intn(len(transitDomains[d1]))]
			b := transitDomains[d2][src.Intn(len(transitDomains[d2]))]
			if err := addEdgeIfAbsent(g, a, b, lat(params.TransitTransitRTT)); err != nil {
				return nil, err
			}
		}
	}

	// 3. Stub domains. Stub domain indices continue after transit domains so
	// Node.Domain is globally unique.
	stubDomain := params.TransitDomains
	for d := 0; d < params.TransitDomains; d++ {
		for _, tn := range transitDomains[d] {
			for s := 0; s < params.StubDomainsPerTransitNode; s++ {
				nodes := make([]NodeID, params.StubNodesPerDomain)
				for i := range nodes {
					nodes[i] = g.AddNode(KindStub, stubDomain)
				}
				if err := connectDomain(g, nodes, params.IntraStubRTT, params.ExtraIntraDomainEdgeProb, lat, src); err != nil {
					return nil, fmt.Errorf("stub domain %d: %w", stubDomain, err)
				}
				// Gateway link from a random stub router to its transit node.
				gw := nodes[src.Intn(len(nodes))]
				if err := g.AddEdge(gw, tn, lat(params.TransitStubRTT)); err != nil {
					return nil, fmt.Errorf("gateway for stub domain %d: %w", stubDomain, err)
				}
				stubDomain++
			}
		}
	}

	if !g.IsConnected() {
		return nil, ErrDisconnected
	}
	return g, nil
}

// connectDomain wires nodes into a connected subgraph: a random spanning
// tree plus extra edges with probability extraProb per pair.
func connectDomain(g *Graph, nodes []NodeID, meanRTT, extraProb float64, lat func(float64) float64, src *simrand.Source) error {
	if len(nodes) == 0 {
		return nil
	}
	// Random spanning tree: attach each node (in random order) to a random
	// already-attached node.
	order := src.Perm(len(nodes))
	for i := 1; i < len(order); i++ {
		a := nodes[order[i]]
		b := nodes[order[src.Intn(i)]]
		if err := g.AddEdge(a, b, lat(meanRTT)); err != nil {
			return err
		}
	}
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if g.HasEdge(nodes[i], nodes[j]) {
				continue
			}
			if src.Float64() < extraProb {
				if err := g.AddEdge(nodes[i], nodes[j], lat(meanRTT)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func addEdgeIfAbsent(g *Graph, a, b NodeID, weight float64) error {
	if a == b || g.HasEdge(a, b) {
		return nil
	}
	return g.AddEdge(a, b, weight)
}
