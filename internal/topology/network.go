package topology

import (
	"fmt"
	"math"
	"sort"

	"edgecachegroups/internal/simrand"
)

// CacheIndex identifies an edge cache within a Network (0..N-1). The origin
// server is addressed separately.
type CacheIndex int

// Network is an edge cache network placed on a topology: one origin server
// and N edge caches attached to distinct stub routers, with the true
// shortest-path RTT between every pair of placed endpoints precomputed.
//
// Network is immutable after construction and safe for concurrent reads.
type Network struct {
	graph  *Graph
	origin NodeID
	caches []NodeID

	// dist[i][j] is the RTT between endpoints i and j where index 0 is the
	// origin and index k+1 is cache k.
	dist [][]float64
}

// PlaceParams configures endpoint placement.
type PlaceParams struct {
	// NumCaches is the number of edge caches to place.
	NumCaches int
}

// NewNetwork places an origin server and params.NumCaches edge caches on
// distinct stub routers of g and precomputes all pairwise RTTs.
func NewNetwork(g *Graph, params PlaceParams, src *simrand.Source) (*Network, error) {
	if params.NumCaches < 1 {
		return nil, fmt.Errorf("topology: NumCaches must be >= 1, got %d", params.NumCaches)
	}
	stubs := g.NodesOfKind(KindStub)
	need := params.NumCaches + 1
	if len(stubs) < need {
		return nil, fmt.Errorf("topology: need %d stub nodes for placement, topology has %d", need, len(stubs))
	}
	picks, err := src.SampleWithoutReplacement(len(stubs), need)
	if err != nil {
		return nil, fmt.Errorf("place endpoints: %w", err)
	}
	origin := stubs[picks[0]]
	caches := make([]NodeID, params.NumCaches)
	for i := 0; i < params.NumCaches; i++ {
		caches[i] = stubs[picks[i+1]]
	}
	return buildNetwork(g, origin, caches)
}

// NewNetworkAt places the endpoints at explicit attachment nodes. All
// attachment nodes must exist; caches need not be distinct from each other
// (co-located caches are legal, e.g. for tests).
func NewNetworkAt(g *Graph, origin NodeID, caches []NodeID) (*Network, error) {
	if len(caches) == 0 {
		return nil, fmt.Errorf("topology: need at least one cache")
	}
	if _, err := g.Node(origin); err != nil {
		return nil, fmt.Errorf("origin: %w", err)
	}
	for i, c := range caches {
		if _, err := g.Node(c); err != nil {
			return nil, fmt.Errorf("cache %d: %w", i, err)
		}
	}
	cp := make([]NodeID, len(caches))
	copy(cp, caches)
	return buildNetwork(g, origin, cp)
}

func buildNetwork(g *Graph, origin NodeID, caches []NodeID) (*Network, error) {
	endpoints := make([]NodeID, 0, len(caches)+1)
	endpoints = append(endpoints, origin)
	endpoints = append(endpoints, caches...)

	rows, err := g.ShortestPathsMulti(endpoints)
	if err != nil {
		return nil, fmt.Errorf("compute RTT matrix: %w", err)
	}
	n := len(endpoints)
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			d := rows[i][int(endpoints[j])]
			if math.IsInf(d, 1) {
				return nil, fmt.Errorf("endpoint %d unreachable from endpoint %d: %w", j, i, ErrDisconnected)
			}
			dist[i][j] = d
		}
	}
	// Dijkstra accumulates edge weights in path order, so dist[i][j] and
	// dist[j][i] can differ by a few ULPs. RTTs are symmetric by assumption
	// (paper §3), so symmetrize explicitly.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := (dist[i][j] + dist[j][i]) / 2
			dist[i][j], dist[j][i] = d, d
		}
	}
	return &Network{graph: g, origin: origin, caches: caches, dist: dist}, nil
}

// NumCaches returns N, the number of edge caches.
func (nw *Network) NumCaches() int { return len(nw.caches) }

// Graph returns the underlying topology graph.
func (nw *Network) Graph() *Graph { return nw.graph }

// OriginNode returns the origin server's attachment router.
func (nw *Network) OriginNode() NodeID { return nw.origin }

// CacheNode returns the attachment router of cache i.
func (nw *Network) CacheNode(i CacheIndex) (NodeID, error) {
	if int(i) < 0 || int(i) >= len(nw.caches) {
		return 0, fmt.Errorf("topology: cache index %d out of range [0,%d)", i, len(nw.caches))
	}
	return nw.caches[int(i)], nil
}

// Dist returns the true RTT in milliseconds between caches i and j.
func (nw *Network) Dist(i, j CacheIndex) float64 {
	return nw.dist[int(i)+1][int(j)+1]
}

// DistToOrigin returns the true RTT between cache i and the origin server.
func (nw *Network) DistToOrigin(i CacheIndex) float64 {
	return nw.dist[0][int(i)+1]
}

// MeanPairwiseDist returns the mean RTT over all unordered cache pairs.
func (nw *Network) MeanPairwiseDist() float64 {
	n := len(nw.caches)
	if n < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += nw.dist[i+1][j+1]
		}
	}
	return sum / float64(n*(n-1)/2)
}

// CachesByOriginDistance returns all cache indices sorted by ascending RTT
// to the origin server. Ties are broken by index for determinism.
func (nw *Network) CachesByOriginDistance() []CacheIndex {
	out := make([]CacheIndex, len(nw.caches))
	for i := range out {
		out[i] = CacheIndex(i)
	}
	sort.SliceStable(out, func(a, b int) bool {
		da, db := nw.DistToOrigin(out[a]), nw.DistToOrigin(out[b])
		if da != db {
			return da < db
		}
		return out[a] < out[b]
	})
	return out
}

// NearestCaches returns the k caches closest to the origin.
func (nw *Network) NearestCaches(k int) []CacheIndex {
	sorted := nw.CachesByOriginDistance()
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// FarthestCaches returns the k caches farthest from the origin.
func (nw *Network) FarthestCaches(k int) []CacheIndex {
	sorted := nw.CachesByOriginDistance()
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[len(sorted)-k:]
}
