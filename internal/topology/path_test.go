package topology

import (
	"errors"
	"math"
	"testing"

	"edgecachegroups/internal/simrand"
)

func TestShortestPathTreeLine(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(KindStub, 0)
	b := g.AddNode(KindStub, 0)
	c := g.AddNode(KindStub, 0)
	d := g.AddNode(KindStub, 0) // isolated
	if err := g.AddEdge(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c, 2); err != nil {
		t.Fatal(err)
	}

	tree, err := g.ShortestPathTree(a)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Source() != a {
		t.Fatalf("Source = %d", tree.Source())
	}
	if tree.Dist(c) != 3 {
		t.Fatalf("Dist(c) = %v", tree.Dist(c))
	}
	if !math.IsInf(tree.Dist(d), 1) {
		t.Fatalf("Dist(isolated) = %v", tree.Dist(d))
	}
	if !math.IsInf(tree.Dist(NodeID(99)), 1) {
		t.Fatal("out-of-range Dist should be +Inf")
	}

	path, err := tree.Path(c)
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{a, b, c}
	if len(path) != 3 {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	hops, err := tree.HopCount(c)
	if err != nil {
		t.Fatal(err)
	}
	if hops != 2 {
		t.Fatalf("hops = %d, want 2", hops)
	}

	// Self path.
	self, err := tree.Path(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(self) != 1 || self[0] != a {
		t.Fatalf("self path = %v", self)
	}

	// Errors.
	if _, err := tree.Path(d); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("unreachable path err = %v", err)
	}
	if _, err := tree.Path(NodeID(99)); err == nil {
		t.Fatal("out-of-range path accepted")
	}
	if _, err := g.ShortestPathTree(NodeID(99)); err == nil {
		t.Fatal("bad source accepted")
	}
}

// TestPathDistancesMatchDijkstra: the tree's path edge weights must sum to
// the reported distance.
func TestPathDistancesMatchDijkstra(t *testing.T) {
	g, err := GenerateTransitStub(DefaultTransitStubParams(), simrand.New(50))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := g.ShortestPathTree(0)
	if err != nil {
		t.Fatal(err)
	}
	for dst := 1; dst < g.NumNodes(); dst += 37 {
		path, err := tree.Path(NodeID(dst))
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := 0; i+1 < len(path); i++ {
			w, err := g.EdgeWeight(path[i], path[i+1])
			if err != nil {
				t.Fatalf("path uses non-edge (%d,%d): %v", path[i], path[i+1], err)
			}
			sum += w
		}
		if math.Abs(sum-tree.Dist(NodeID(dst))) > 1e-9 {
			t.Fatalf("dst %d: path sum %v != dist %v", dst, sum, tree.Dist(NodeID(dst)))
		}
	}
}
