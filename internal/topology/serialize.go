package topology

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// graphJSON is the on-disk representation of a Graph.
type graphJSON struct {
	Nodes []Node     `json:"nodes"`
	Edges []edgeJSON `json:"edges"`
}

type edgeJSON struct {
	A      NodeID  `json:"a"`
	B      NodeID  `json:"b"`
	Weight float64 `json:"weightMS"`
}

// WriteJSON serializes the graph to w.
func (g *Graph) WriteJSON(w io.Writer) error {
	out := graphJSON{Nodes: make([]Node, len(g.nodes))}
	copy(out.Nodes, g.nodes)
	for a, edges := range g.adj {
		for _, e := range edges {
			if NodeID(a) < e.to { // each undirected edge once
				out.Edges = append(out.Edges, edgeJSON{A: NodeID(a), B: e.to, Weight: e.weight})
			}
		}
	}
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(out); err != nil {
		return fmt.Errorf("encode graph: %w", err)
	}
	return bw.Flush()
}

// ReadGraphJSON deserializes a graph written by WriteJSON, re-validating
// every node and edge.
func ReadGraphJSON(r io.Reader) (*Graph, error) {
	var in graphJSON
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&in); err != nil {
		return nil, fmt.Errorf("decode graph: %w", err)
	}
	g := NewGraph()
	for i, n := range in.Nodes {
		if n.ID != NodeID(i) {
			return nil, fmt.Errorf("topology: node %d has ID %d; IDs must be dense", i, n.ID)
		}
		if n.Kind != KindTransit && n.Kind != KindStub {
			return nil, fmt.Errorf("topology: node %d has unknown kind %d", i, n.Kind)
		}
		g.AddNode(n.Kind, n.Domain)
	}
	for i, e := range in.Edges {
		if err := g.AddEdge(e.A, e.B, e.Weight); err != nil {
			return nil, fmt.Errorf("edge %d: %w", i, err)
		}
	}
	return g, nil
}
