package topology

import (
	"container/heap"
	"fmt"
	"math"
)

// ShortestPathTree holds single-source shortest-path distances plus
// predecessor links, so explicit router-level paths can be extracted
// (traceroute-style diagnostics).
type ShortestPathTree struct {
	src  NodeID
	dist []float64
	prev []NodeID
}

// ShortestPathTree computes the shortest-path tree rooted at src.
func (g *Graph) ShortestPathTree(src NodeID) (*ShortestPathTree, error) {
	n := len(g.nodes)
	if int(src) < 0 || int(src) >= n {
		return nil, fmt.Errorf("topology: source node %d out of range [0,%d)", src, n)
	}
	dist := make([]float64, n)
	prev := make([]NodeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[int(src)] = 0
	done := make([]bool, n)

	h := make(distHeap, 0, n)
	heap.Push(&h, pqItem{node: src, dist: 0})
	for h.Len() > 0 {
		it := heap.Pop(&h).(pqItem)
		u := int(it.node)
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range g.adj[u] {
			v := int(e.to)
			if nd := it.dist + e.weight; nd < dist[v] {
				dist[v] = nd
				prev[v] = it.node
				heap.Push(&h, pqItem{node: e.to, dist: nd})
			}
		}
	}
	return &ShortestPathTree{src: src, dist: dist, prev: prev}, nil
}

// Source returns the tree's root.
func (t *ShortestPathTree) Source() NodeID { return t.src }

// Dist returns the distance from the root to node, +Inf if unreachable.
func (t *ShortestPathTree) Dist(node NodeID) float64 {
	if int(node) < 0 || int(node) >= len(t.dist) {
		return math.Inf(1)
	}
	return t.dist[int(node)]
}

// Path returns the router-level path from the root to dst, inclusive of
// both endpoints. It errors when dst is unreachable or out of range.
func (t *ShortestPathTree) Path(dst NodeID) ([]NodeID, error) {
	if int(dst) < 0 || int(dst) >= len(t.dist) {
		return nil, fmt.Errorf("topology: destination %d out of range [0,%d)", dst, len(t.dist))
	}
	if math.IsInf(t.dist[int(dst)], 1) {
		return nil, fmt.Errorf("topology: node %d unreachable from %d: %w", dst, t.src, ErrDisconnected)
	}
	var rev []NodeID
	for cur := dst; ; cur = t.prev[int(cur)] {
		rev = append(rev, cur)
		if cur == t.src {
			break
		}
		if t.prev[int(cur)] == -1 {
			return nil, fmt.Errorf("topology: broken predecessor chain at node %d", cur)
		}
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// HopCount returns the number of links on the root-to-dst path.
func (t *ShortestPathTree) HopCount(dst NodeID) (int, error) {
	p, err := t.Path(dst)
	if err != nil {
		return 0, err
	}
	return len(p) - 1, nil
}
