package topology

import (
	"errors"
	"math"
	"testing"
)

func TestAddNodeAndLookup(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(KindTransit, 0)
	b := g.AddNode(KindStub, 3)
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
	na, err := g.Node(a)
	if err != nil {
		t.Fatal(err)
	}
	if na.Kind != KindTransit || na.Domain != 0 {
		t.Fatalf("node a = %+v", na)
	}
	nb, err := g.Node(b)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Kind != KindStub || nb.Domain != 3 {
		t.Fatalf("node b = %+v", nb)
	}
	if _, err := g.Node(NodeID(2)); err == nil {
		t.Fatal("out-of-range Node lookup should error")
	}
	if _, err := g.Node(NodeID(-1)); err == nil {
		t.Fatal("negative Node lookup should error")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(KindStub, 0)
	b := g.AddNode(KindStub, 0)

	tests := []struct {
		name   string
		a, b   NodeID
		weight float64
	}{
		{name: "self loop", a: a, b: a, weight: 1},
		{name: "unknown node", a: a, b: NodeID(9), weight: 1},
		{name: "zero weight", a: a, b: b, weight: 0},
		{name: "negative weight", a: a, b: b, weight: -1},
		{name: "nan weight", a: a, b: b, weight: math.NaN()},
		{name: "inf weight", a: a, b: b, weight: math.Inf(1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddEdge(tt.a, tt.b, tt.weight); err == nil {
				t.Fatal("expected error, got nil")
			}
		})
	}

	if err := g.AddEdge(a, b, 5); err != nil {
		t.Fatalf("valid AddEdge failed: %v", err)
	}
	if err := g.AddEdge(b, a, 5); err == nil {
		t.Fatal("duplicate edge (reversed) should error")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestEdgeQueries(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(KindStub, 0)
	b := g.AddNode(KindStub, 0)
	c := g.AddNode(KindStub, 0)
	if err := g.AddEdge(a, b, 7.5); err != nil {
		t.Fatal(err)
	}

	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Fatal("HasEdge should be symmetric")
	}
	if g.HasEdge(a, c) {
		t.Fatal("HasEdge(a,c) should be false")
	}
	if g.HasEdge(NodeID(-1), a) {
		t.Fatal("HasEdge with bad node should be false")
	}
	w, err := g.EdgeWeight(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if w != 7.5 {
		t.Fatalf("EdgeWeight = %v, want 7.5", w)
	}
	if _, err := g.EdgeWeight(a, c); err == nil {
		t.Fatal("EdgeWeight of missing edge should error")
	}
	if _, err := g.EdgeWeight(NodeID(-1), a); err == nil {
		t.Fatal("EdgeWeight with bad node should error")
	}
	if got := g.Degree(a); got != 1 {
		t.Fatalf("Degree(a) = %d, want 1", got)
	}
	if got := g.Degree(NodeID(99)); got != 0 {
		t.Fatalf("Degree(out of range) = %d, want 0", got)
	}
	nbrs := g.Neighbors(a, nil)
	if len(nbrs) != 1 || nbrs[0] != b {
		t.Fatalf("Neighbors(a) = %v, want [b]", nbrs)
	}
	if got := g.Neighbors(NodeID(99), nil); got != nil {
		t.Fatalf("Neighbors(out of range) = %v, want nil", got)
	}
}

func TestNodesOfKind(t *testing.T) {
	g := NewGraph()
	g.AddNode(KindTransit, 0)
	s1 := g.AddNode(KindStub, 1)
	s2 := g.AddNode(KindStub, 1)
	stubs := g.NodesOfKind(KindStub)
	if len(stubs) != 2 || stubs[0] != s1 || stubs[1] != s2 {
		t.Fatalf("NodesOfKind(stub) = %v", stubs)
	}
}

func TestIsConnected(t *testing.T) {
	g := NewGraph()
	if !g.IsConnected() {
		t.Fatal("empty graph should be connected")
	}
	a := g.AddNode(KindStub, 0)
	b := g.AddNode(KindStub, 0)
	if g.IsConnected() {
		t.Fatal("two isolated nodes should not be connected")
	}
	if err := g.AddEdge(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("connected pair reported disconnected")
	}
}

func TestNodeKindString(t *testing.T) {
	if KindTransit.String() != "transit" || KindStub.String() != "stub" {
		t.Fatal("NodeKind String() mismatch")
	}
	if NodeKind(0).String() != "NodeKind(0)" {
		t.Fatalf("unknown kind String() = %q", NodeKind(0).String())
	}
}

func TestShortestPathsLine(t *testing.T) {
	// a --1-- b --2-- c, plus isolated d.
	g := NewGraph()
	a := g.AddNode(KindStub, 0)
	b := g.AddNode(KindStub, 0)
	c := g.AddNode(KindStub, 0)
	d := g.AddNode(KindStub, 0)
	if err := g.AddEdge(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c, 2); err != nil {
		t.Fatal(err)
	}

	dist, err := g.ShortestPaths(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 3}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("dist[%d] = %v, want %v", i, dist[i], w)
		}
	}
	if !math.IsInf(dist[int(d)], 1) {
		t.Fatalf("unreachable node distance = %v, want +Inf", dist[int(d)])
	}
	if _, err := g.ShortestPaths(NodeID(99)); err == nil {
		t.Fatal("out-of-range source should error")
	}
}

func TestShortestPathsPrefersCheaperRoute(t *testing.T) {
	// Direct edge a-c costs 10, detour a-b-c costs 3.
	g := NewGraph()
	a := g.AddNode(KindStub, 0)
	b := g.AddNode(KindStub, 0)
	c := g.AddNode(KindStub, 0)
	for _, e := range []struct {
		u, v NodeID
		w    float64
	}{{a, c, 10}, {a, b, 1}, {b, c, 2}} {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	dist, err := g.ShortestPaths(a)
	if err != nil {
		t.Fatal(err)
	}
	if dist[int(c)] != 3 {
		t.Fatalf("dist to c = %v, want 3", dist[int(c)])
	}
}

func TestShortestPathsMulti(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(KindStub, 0)
	b := g.AddNode(KindStub, 0)
	if err := g.AddEdge(a, b, 4); err != nil {
		t.Fatal(err)
	}
	rows, err := g.ShortestPathsMulti([]NodeID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][int(b)] != 4 || rows[1][int(a)] != 4 {
		t.Fatalf("multi-source distances wrong: %v", rows)
	}
	if _, err := g.ShortestPathsMulti([]NodeID{NodeID(50)}); err == nil {
		t.Fatal("bad source in multi should error")
	}
}

func TestEccentricity(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(KindStub, 0)
	b := g.AddNode(KindStub, 0)
	c := g.AddNode(KindStub, 0)
	if err := g.AddEdge(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c, 2); err != nil {
		t.Fatal(err)
	}
	ecc, err := g.Eccentricity(a)
	if err != nil {
		t.Fatal(err)
	}
	if ecc != 3 {
		t.Fatalf("Eccentricity = %v, want 3", ecc)
	}

	g.AddNode(KindStub, 0) // isolated
	if _, err := g.Eccentricity(a); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("expected ErrDisconnected, got %v", err)
	}
}
