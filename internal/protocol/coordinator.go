package protocol

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/obs"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/verify"
)

// NoRetries configures Config.Retries for exactly one attempt per request.
// The zero value of Retries means "use the default"; this sentinel makes
// an explicit zero-retry run expressible.
const NoRetries = -1

// Config tunes the distributed group formation run.
type Config struct {
	// L is the landmark count (origin included); M the PLSet multiplier.
	L int
	M int
	// K is the number of groups to form.
	K int
	// Theta is the SDSL sensitivity (0 = plain SL seeding).
	Theta float64
	// ReplyTimeout bounds each wait for outstanding replies. Zero means
	// the default (100ms).
	ReplyTimeout time.Duration
	// Retries is how many times an unanswered request is re-sent before
	// the peer is declared unresponsive. Zero means the default (2); use
	// NoRetries (-1) for an explicit zero-retry run.
	Retries int
	// BackoffBase, when positive, inserts an exponential backoff sleep
	// before each retry attempt: base·2^(attempt-1), capped at BackoffMax,
	// with deterministic jitter in [0.5,1.5) drawn from a child of the
	// coordinator's random source. Zero disables backoff (retries fire
	// immediately after the reply timeout, as before).
	BackoffBase time.Duration
	// BackoffMax caps the backoff sleep. Zero means 10× BackoffBase.
	BackoffMax time.Duration
	// RoundBudget, when positive, bounds the total wall time of each
	// protocol round including all retries and backoff sleeps. A round
	// that exhausts its budget stops retrying and degrades (or fails with
	// an error wrapping ErrBudgetExceeded if it is below quorum). Zero
	// means unlimited.
	RoundBudget time.Duration
	// Stages, when non-nil, records per-round wall time and the retry /
	// duplicate / timeout counters of the run.
	Stages *verify.Stages
	// Obs is the optional observability sink: rounds emit trace spans and
	// KindProtocolRound events (reply counts), and the run's message /
	// retry / duplicate / timeout totals land in its counters. Nil
	// disables instrumentation; enabling it never changes the Result.
	Obs *obs.Obs
	// Cluster tunes the K-means iteration.
	Cluster cluster.Options
}

func (c Config) withDefaults() Config {
	if c.ReplyTimeout <= 0 {
		c.ReplyTimeout = 100 * time.Millisecond
	}
	switch c.Retries {
	case 0:
		c.Retries = 2
	case NoRetries:
		c.Retries = 0
	}
	if c.BackoffBase > 0 && c.BackoffMax <= 0 {
		c.BackoffMax = 10 * c.BackoffBase
	}
	return c
}

// Validate reports whether the config is usable for numCaches caches.
func (c Config) Validate(numCaches int) error {
	switch {
	case c.L < 2:
		return fmt.Errorf("protocol: L must be >= 2, got %d", c.L)
	case c.M < 1:
		return fmt.Errorf("protocol: M must be >= 1, got %d", c.M)
	case c.M*(c.L-1) > numCaches:
		return fmt.Errorf("protocol: PLSet size M*(L-1)=%d exceeds %d caches", c.M*(c.L-1), numCaches)
	case c.K < 1 || c.K > numCaches:
		return fmt.Errorf("protocol: K=%d out of range [1,%d]", c.K, numCaches)
	case c.Theta < 0:
		return fmt.Errorf("protocol: Theta must be >= 0, got %v", c.Theta)
	case c.Retries < NoRetries:
		return fmt.Errorf("protocol: Retries must be >= 0 (or NoRetries), got %d", c.Retries)
	case c.BackoffBase < 0:
		return fmt.Errorf("protocol: BackoffBase must be >= 0, got %v", c.BackoffBase)
	case c.BackoffMax < 0:
		return fmt.Errorf("protocol: BackoffMax must be >= 0, got %v", c.BackoffMax)
	case c.RoundBudget < 0:
		return fmt.Errorf("protocol: RoundBudget must be >= 0, got %v", c.RoundBudget)
	}
	return c.Cluster.Validate()
}

// Typed protocol failures. Run never panics and never blocks forever: it
// either returns a verified Result or an error wrapping one of these.
var (
	// ErrQuorum reports that a round gathered too few replies to proceed.
	ErrQuorum = errors.New("protocol: insufficient responses for quorum")
	// ErrBudgetExceeded reports that a round ran out of its RoundBudget.
	ErrBudgetExceeded = errors.New("protocol: round deadline budget exceeded")
)

// RoundError is the typed failure of one protocol round; Round names the
// round ("plset", "features", "cluster"). It wraps the cause, so
// errors.Is(err, ErrQuorum) etc. see through it.
type RoundError struct {
	Round string
	Err   error
}

// Error implements error.
func (e *RoundError) Error() string { return fmt.Sprintf("protocol: round %s: %v", e.Round, e.Err) }

// Unwrap supports errors.Is/As.
func (e *RoundError) Unwrap() error { return e.Err }

// Result is the outcome of a distributed group formation run.
type Result struct {
	// Landmarks is the chosen landmark set (origin first).
	Landmarks []probe.Endpoint
	// Assignments maps each responsive cache to its group.
	Assignments map[topology.CacheIndex]int
	// Groups lists members per group ID.
	Groups [][]topology.CacheIndex
	// Centers are the final cluster centers in feature space.
	Centers []cluster.Vector
	// Unresponsive lists caches that never answered the feature round;
	// they are not part of any group.
	Unresponsive []topology.CacheIndex
	// UnackedAssignments lists caches whose assignment was sent but never
	// acknowledged (they may or may not have applied it), in ascending
	// order.
	UnackedAssignments []topology.CacheIndex
	// MessagesSent counts every protocol message the coordinator sent.
	MessagesSent int64
	// Retries counts request re-sends across all rounds.
	Retries int64
	// DuplicateReplies counts redundant replies received (duplicated
	// deliveries, late replies to already-answered requests, and replies
	// from earlier rounds).
	DuplicateReplies int64
	// TimedOutWaits counts reply waits that expired with requests still
	// pending.
	TimedOutWaits int64
	// PLSetSize and PLSetResponsive surface the landmark round's quorum:
	// landmark selection proceeds on a partial quorum of at least L-1 of
	// the M*(L-1) PLSet members.
	PLSetSize       int
	PLSetResponsive int
	// Degraded reports that the run completed but not cleanly: a partial
	// PLSet quorum, fewer landmarks than L, unresponsive caches, or
	// unacknowledged assignments.
	Degraded bool
}

// Coordinator drives the distributed protocol. Build one per run.
type Coordinator struct {
	cfg        Config
	n          int
	transport  Transport
	inbox      <-chan Message
	src        *simrand.Source
	backoffSrc *simrand.Source
	seq        uint64

	sent     int64
	retries  int64
	dups     int64
	timeouts int64
}

// NewCoordinator builds a coordinator for a network of numCaches agents.
func NewCoordinator(cfg Config, numCaches int, transport Transport, src *simrand.Source) (*Coordinator, error) {
	if transport == nil {
		return nil, errors.New("protocol: nil transport")
	}
	if src == nil {
		return nil, errors.New("protocol: nil random source")
	}
	if err := cfg.Validate(numCaches); err != nil {
		return nil, err
	}
	return &Coordinator{
		cfg:        cfg.withDefaults(),
		n:          numCaches,
		transport:  transport,
		inbox:      transport.Register(CoordinatorAddr()),
		src:        src,
		backoffSrc: src.Split("backoff"),
	}, nil
}

// Run executes the five protocol rounds and returns the formed groups.
// It returns either a Result that passed the verify-layer conservation
// checks or a typed error (*RoundError / *verify.Error); it never panics
// and every wait is bounded by ReplyTimeout, Retries, and RoundBudget.
func (c *Coordinator) Run() (*Result, error) {
	// Round 1: PLSet probing.
	plIdx, err := c.src.SampleWithoutReplacement(c.n, c.cfg.M*(c.cfg.L-1))
	if err != nil {
		return nil, fmt.Errorf("sample PLSet: %w", err)
	}
	plset := make([]topology.CacheIndex, len(plIdx))
	for i, v := range plIdx {
		plset[i] = topology.CacheIndex(v)
	}
	plTargets := make([]probe.Endpoint, 0, len(plset)+1)
	plTargets = append(plTargets, probe.Origin())
	for _, ci := range plset {
		plTargets = append(plTargets, probe.Cache(ci))
	}
	plReplies, plOut := c.requestRound("plset", plset, plTargets)
	c.cfg.Obs.EmitNow(obs.KindProtocolRound, "plset", int64(len(plReplies)))
	if len(plReplies) < c.cfg.L-1 {
		return nil, c.roundFailure("plset", plOut, fmt.Errorf("only %d of %d PLSet members responded, need >= %d",
			len(plReplies), len(plset), c.cfg.L-1))
	}

	// Round 2: landmark selection over the gathered matrix.
	landmarks := c.selectLandmarks(plset, plTargets, plReplies)

	// Round 3: feature probing by every cache.
	all := make([]topology.CacheIndex, c.n)
	for i := range all {
		all[i] = topology.CacheIndex(i)
	}
	featReplies, featOut := c.requestRound("features", all, landmarks)
	c.cfg.Obs.EmitNow(obs.KindProtocolRound, "features", int64(len(featReplies)))
	if len(featReplies) < c.cfg.K {
		return nil, c.roundFailure("features", featOut, fmt.Errorf("only %d caches responded, need >= K=%d",
			len(featReplies), c.cfg.K))
	}

	// Round 4: clustering.
	responsive := make([]topology.CacheIndex, 0, len(featReplies))
	for _, ci := range all {
		if _, ok := featReplies[ci]; ok {
			responsive = append(responsive, ci)
		}
	}
	points := cluster.NewMatrix(len(responsive), len(landmarks))
	serverDist := make([]float64, len(responsive))
	for i, ci := range responsive {
		rtts := featReplies[ci]
		if len(rtts) != len(landmarks) {
			// A ragged reply previously surfaced as a cluster-validation
			// error; with the fixed-width matrix it is rejected up front.
			return nil, &RoundError{Round: "cluster", Err: fmt.Errorf(
				"cache %d returned %d measurements for %d landmarks", ci, len(rtts), len(landmarks))}
		}
		fv := points.Row(i)
		for j, v := range rtts {
			if v < 0 {
				v = 0 // failed single measurement: degrade, don't discard
			}
			fv[j] = v
		}
		serverDist[i] = fv[0] // landmark 0 is the origin
	}
	var seeder cluster.Seeder = cluster.UniformSeeder{}
	if c.cfg.Theta > 0 {
		weights := make([]float64, len(serverDist))
		for i, d := range serverDist {
			if d < 1 {
				d = 1
			}
			weights[i] = 1 / math.Pow(d, c.cfg.Theta)
		}
		seeder = cluster.WeightedSeeder{Weights: weights}
	}
	k := c.cfg.K
	if k > points.Rows() {
		k = points.Rows()
	}
	clustered, err := cluster.KMeansMatrix(points, k, seeder, c.cfg.Cluster, c.src.Split("kmeans"))
	if err != nil {
		return nil, &RoundError{Round: "cluster", Err: fmt.Errorf("cluster features: %w", err)}
	}

	res := &Result{
		Landmarks:       landmarks,
		Assignments:     make(map[topology.CacheIndex]int, len(responsive)),
		Groups:          make([][]topology.CacheIndex, k),
		Centers:         clustered.Centers,
		PLSetSize:       len(plset),
		PLSetResponsive: len(plReplies),
	}
	for i, ci := range responsive {
		g := clustered.Assignments[i]
		res.Assignments[ci] = g
		res.Groups[g] = append(res.Groups[g], ci)
	}
	for _, ci := range all {
		if _, ok := featReplies[ci]; !ok {
			res.Unresponsive = append(res.Unresponsive, ci)
		}
	}

	// Round 5: assignment broadcast with acknowledgements.
	res.UnackedAssignments = c.assignRound(res)
	c.cfg.Obs.EmitNow(obs.KindProtocolRound, "assign",
		int64(len(res.Assignments)-len(res.UnackedAssignments)))
	c.drainInbox()
	res.MessagesSent = c.sent
	res.Retries = c.retries
	res.DuplicateReplies = c.dups
	res.TimedOutWaits = c.timeouts
	res.Degraded = res.PLSetResponsive < res.PLSetSize ||
		len(res.Landmarks) < c.cfg.L ||
		len(res.Unresponsive) > 0 ||
		len(res.UnackedAssignments) > 0

	if c.cfg.Stages != nil {
		c.cfg.Stages.Add("protocol-retries", res.Retries)
		c.cfg.Stages.Add("protocol-duplicate-replies", res.DuplicateReplies)
		c.cfg.Stages.Add("protocol-timeouts", res.TimedOutWaits)
	}
	if o := c.cfg.Obs; o != nil {
		o.Counter("protocol_messages_sent_total").Add(res.MessagesSent)
		o.Counter("protocol_retries_total").Add(res.Retries)
		o.Counter("protocol_duplicate_replies_total").Add(res.DuplicateReplies)
		o.Counter("protocol_timed_out_waits_total").Add(res.TimedOutWaits)
		if res.Degraded {
			o.Counter("protocol_degraded_runs_total").Inc()
		}
		o.Gauge("protocol_unresponsive").Set(float64(len(res.Unresponsive)))
		o.Gauge("protocol_unacked_assignments").Set(float64(len(res.UnackedAssignments)))
		o.Gauge("protocol_plset_size").Set(float64(res.PLSetSize))
		o.Gauge("protocol_plset_responsive").Set(float64(res.PLSetResponsive))
	}
	if err := c.verifyResult(res); err != nil {
		return nil, err
	}
	return res, nil
}

// verifyResult audits the run's conservation invariants through the
// verify layer before the result is handed out.
func (c *Coordinator) verifyResult(res *Result) error {
	sizes := make([]int, len(res.Groups))
	for g, members := range res.Groups {
		sizes[g] = len(members)
	}
	return verify.Protocol(verify.ProtocolData{
		NumCaches:        c.n,
		NumGroups:        len(res.Groups),
		GroupSizes:       sizes,
		Assigned:         len(res.Assignments),
		Unresponsive:     len(res.Unresponsive),
		Unacked:          len(res.UnackedAssignments),
		MessagesSent:     res.MessagesSent,
		Retries:          res.Retries,
		DuplicateReplies: res.DuplicateReplies,
		TimedOutWaits:    res.TimedOutWaits,
	})
}

// drainInbox counts the messages still queued after the final round as
// redundant, without blocking. Together with the rounds' uniform
// stale-message counting this makes DuplicateReplies equal to every
// message delivered to the coordinator minus the accepted ones — a
// quantity the transport's per-link fault streams fix deterministically.
func (c *Coordinator) drainInbox() {
	for {
		select {
		case _, ok := <-c.inbox:
			if !ok {
				return
			}
			c.dups++
		default:
			return
		}
	}
}

// roundOutcome records why a round stopped collecting replies.
type roundOutcome struct {
	budgetExceeded bool
	inboxClosed    bool
}

// roundFailure wraps a below-quorum round into the typed error chain.
func (c *Coordinator) roundFailure(round string, out roundOutcome, reason error) error {
	err := fmt.Errorf("%v: %w", reason, ErrQuorum)
	if out.budgetExceeded {
		err = fmt.Errorf("%w (%w after %v)", err, ErrBudgetExceeded, c.cfg.RoundBudget)
	}
	if out.inboxClosed {
		err = fmt.Errorf("%w (%w)", err, ErrTransportClosed)
	}
	return &RoundError{Round: round, Err: err}
}

// backoff sleeps the exponential-backoff delay before retry attempt
// `attempt` (>= 1). It returns false when the round budget is already
// exhausted. The jitter draw comes from a dedicated child stream, so the
// number of draws — and therefore every stream split off c.src — is a
// pure function of the retry schedule.
func (c *Coordinator) backoff(attempt int, budgetEnd time.Time) bool {
	if c.cfg.BackoffBase <= 0 {
		if budgetEnd.IsZero() {
			return true
		}
		//ecglint:allow detclock RoundBudget bounds a round by real elapsed time; wall clock is the point
		return time.Now().Before(budgetEnd)
	}
	exp := attempt - 1
	if exp > 16 {
		exp = 16 // 2^16 × base is past any sane BackoffMax; avoid overflow
	}
	d := c.cfg.BackoffBase << uint(exp)
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	d = time.Duration(float64(d) * (0.5 + c.backoffSrc.Float64()))
	if !budgetEnd.IsZero() {
		//ecglint:allow detclock clamping the backoff to the RoundBudget's wall-clock remainder
		remaining := time.Until(budgetEnd)
		if remaining <= 0 {
			return false
		}
		if d > remaining {
			d = remaining
		}
	}
	//ecglint:allow detclock retry backoff is a real delay against real transports; only the jitter draw feeds determinism and it comes from backoffSrc
	time.Sleep(d)
	return true
}

// budgetEnd returns the wall-clock end of the current round's budget
// (zero time when unbudgeted).
func (c *Coordinator) budgetEnd() time.Time {
	if c.cfg.RoundBudget <= 0 {
		return time.Time{}
	}
	//ecglint:allow detclock RoundBudget anchors the round deadline to the wall clock by design
	return time.Now().Add(c.cfg.RoundBudget)
}

// waitWindow clamps the per-attempt reply timeout to the remaining round
// budget. ok is false when the budget is exhausted.
func (c *Coordinator) waitWindow(budgetEnd time.Time) (time.Duration, bool) {
	wait := c.cfg.ReplyTimeout
	if budgetEnd.IsZero() {
		return wait, true
	}
	//ecglint:allow detclock the reply window is clamped to the RoundBudget's wall-clock remainder
	remaining := time.Until(budgetEnd)
	if remaining <= 0 {
		return 0, false
	}
	if remaining < wait {
		wait = remaining
	}
	return wait, true
}

// requestRound sends probe requests for targets to every peer, retrying
// unanswered peers (with backoff) inside the round budget, and returns
// the RTT vectors keyed by cache index.
func (c *Coordinator) requestRound(name string, peers []topology.CacheIndex, targets []probe.Endpoint) (map[topology.CacheIndex][]float64, roundOutcome) {
	if c.cfg.Stages != nil {
		defer c.cfg.Stages.Start("protocol-" + name)()
		defer func() { c.cfg.Stages.Add("protocol-"+name, int64(len(peers))) }()
	}
	defer c.cfg.Obs.StartSpan("protocol-" + name)()
	var out roundOutcome
	replies := make(map[topology.CacheIndex][]float64, len(peers))
	pending := make(map[topology.CacheIndex]bool, len(peers))
	for _, p := range peers {
		pending[p] = true
	}
	seqOf := make(map[uint64]topology.CacheIndex)
	budgetEnd := c.budgetEnd()

	for attempt := 0; attempt <= c.cfg.Retries && len(pending) > 0; attempt++ {
		if attempt > 0 {
			if !c.backoff(attempt, budgetEnd) {
				out.budgetExceeded = true
				break
			}
			c.retries += int64(len(pending))
		}
		// Iterate peers in their given order so sequence numbers, and the
		// per-link traffic they generate, are schedule-independent.
		for _, p := range peers {
			if !pending[p] {
				continue
			}
			c.seq++
			seqOf[c.seq] = p
			c.sent++
			//ecglint:allow errdrop lost probe requests are re-sent by the retry loop and counted in c.retries
			_ = c.transport.Send(Message{
				Kind:    MsgProbeRequest,
				From:    CoordinatorAddr(),
				To:      CacheAddr(p),
				Seq:     c.seq,
				Targets: targets,
			})
		}
		wait, ok := c.waitWindow(budgetEnd)
		if !ok {
			out.budgetExceeded = true
			break
		}
		//ecglint:allow detclock reply timeout against a real transport; bounded by RoundBudget
		deadline := time.After(wait)
	wait:
		for len(pending) > 0 {
			select {
			case msg, ok := <-c.inbox:
				if !ok {
					out.inboxClosed = true
					return replies, out
				}
				// Anything that is not a fresh answer to a pending request of
				// this round — a duplicated delivery, a late reply to an
				// answered or older request, a malformed reply — counts as
				// redundant. Counting uniformly (rather than skipping stale
				// kinds) keeps the counter equal to delivered-minus-accepted,
				// which is schedule-independent.
				p, known := seqOf[msg.Seq]
				if !known || !pending[p] || msg.Kind != MsgProbeReply || len(msg.RTTs) != len(targets) {
					c.dups++
					continue
				}
				replies[p] = msg.RTTs
				delete(pending, p)
			case <-deadline:
				c.timeouts++
				break wait
			}
		}
	}
	return replies, out
}

// selectLandmarks runs the greedy max-min selection over the PLSet's
// measured matrix. plTargets[0] is the origin; plTargets[i+1] is plset[i].
func (c *Coordinator) selectLandmarks(plset []topology.CacheIndex, plTargets []probe.Endpoint, replies map[topology.CacheIndex][]float64) []probe.Endpoint {
	dist := symmetricPLSetMatrix(plset, plTargets, replies)
	n := len(plTargets)

	responsive := func(i int) bool {
		if i == 0 {
			return true
		}
		_, ok := replies[plset[i-1]]
		return ok
	}

	chosen := []int{0}
	inSet := make([]bool, n)
	inSet[0] = true
	minToSet := make([]float64, n)
	for i := range minToSet {
		minToSet[i] = dist[i][0]
	}
	for len(chosen) < c.cfg.L {
		best := -1
		for i := 1; i < n; i++ {
			if inSet[i] || !responsive(i) {
				continue
			}
			if best < 0 || minToSet[i] > minToSet[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, best)
		inSet[best] = true
		for i := range minToSet {
			if d := dist[i][best]; d < minToSet[i] {
				minToSet[i] = d
			}
		}
	}
	out := make([]probe.Endpoint, len(chosen))
	for i, idx := range chosen {
		out[i] = plTargets[idx]
	}
	return out
}

// symmetricPLSetMatrix builds the symmetric distance matrix over
// plTargets from the gathered replies. Each direction of a pair may carry
// an independent measurement (member i probed target j AND member j
// probed target i); the matrix entry is the mean of whichever directions
// were measured, computed once per unordered pair so both triangle
// entries always agree. Unknown pairs stay 0 so candidates with missing
// data are never preferred by the max-min selection.
func symmetricPLSetMatrix(plset []topology.CacheIndex, plTargets []probe.Endpoint, replies map[topology.CacheIndex][]float64) [][]float64 {
	n := len(plTargets)
	directed := make([][]float64, n) // directed[i][j]: i's measurement of j, -1 unknown
	for i := range directed {
		directed[i] = make([]float64, n)
		for j := range directed[i] {
			directed[i][j] = -1
		}
	}
	for i, ci := range plset {
		rtts, ok := replies[ci]
		if !ok {
			continue
		}
		row := i + 1 // offset past the origin
		for j, v := range rtts {
			if j >= n || v < 0 {
				continue
			}
			directed[row][j] = v
		}
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := directed[i][j], directed[j][i]
			var v float64
			switch {
			case a >= 0 && b >= 0:
				v = (a + b) / 2
			case a >= 0:
				v = a
			case b >= 0:
				v = b
			}
			dist[i][j], dist[j][i] = v, v
		}
	}
	return dist
}

// assignRound broadcasts assignments and collects acknowledgements,
// retrying unacked peers with the same backoff and budget discipline as
// the request rounds. It returns the caches that never acked, ascending.
func (c *Coordinator) assignRound(res *Result) []topology.CacheIndex {
	if c.cfg.Stages != nil {
		defer c.cfg.Stages.Start("protocol-assign")()
		defer func() { c.cfg.Stages.Add("protocol-assign", int64(len(res.Assignments))) }()
	}
	defer c.cfg.Obs.StartSpan("protocol-assign")()
	order := make([]topology.CacheIndex, 0, len(res.Assignments))
	for ci := range res.Assignments {
		order = append(order, ci)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	pending := make(map[topology.CacheIndex]bool, len(order))
	for _, ci := range order {
		pending[ci] = true
	}
	seqOf := make(map[uint64]topology.CacheIndex)
	budgetEnd := c.budgetEnd()

	for attempt := 0; attempt <= c.cfg.Retries && len(pending) > 0; attempt++ {
		if attempt > 0 {
			if !c.backoff(attempt, budgetEnd) {
				break
			}
			c.retries += int64(len(pending))
		}
		for _, ci := range order {
			if !pending[ci] {
				continue
			}
			g := res.Assignments[ci]
			c.seq++
			seqOf[c.seq] = ci
			c.sent++
			//ecglint:allow errdrop lost assigns are re-sent by the retry loop and counted in c.retries
			_ = c.transport.Send(Message{
				Kind:    MsgAssign,
				From:    CoordinatorAddr(),
				To:      CacheAddr(ci),
				Seq:     c.seq,
				Group:   g,
				Members: res.Groups[g],
			})
		}
		wait, ok := c.waitWindow(budgetEnd)
		if !ok {
			break
		}
		//ecglint:allow detclock assign-ack timeout against a real transport; bounded by RoundBudget
		deadline := time.After(wait)
	wait:
		for len(pending) > 0 {
			select {
			case msg, ok := <-c.inbox:
				if !ok {
					break wait
				}
				ci, known := seqOf[msg.Seq]
				if !known || !pending[ci] || msg.Kind != MsgAssignAck {
					c.dups++ // see requestRound: uniform redundant-message counting
					continue
				}
				delete(pending, ci)
			case <-deadline:
				c.timeouts++
				break wait
			}
		}
	}
	unacked := make([]topology.CacheIndex, 0, len(pending))
	for _, ci := range order {
		if pending[ci] {
			unacked = append(unacked, ci)
		}
	}
	if len(unacked) == 0 {
		return nil
	}
	return unacked
}
