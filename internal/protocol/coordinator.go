package protocol

import (
	"errors"
	"fmt"
	"math"
	"time"

	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// Config tunes the distributed group formation run.
type Config struct {
	// L is the landmark count (origin included); M the PLSet multiplier.
	L int
	M int
	// K is the number of groups to form.
	K int
	// Theta is the SDSL sensitivity (0 = plain SL seeding).
	Theta float64
	// ReplyTimeout bounds each wait for outstanding replies. Zero means
	// the default (100ms).
	ReplyTimeout time.Duration
	// Retries is how many times an unanswered request is re-sent before
	// the peer is declared unresponsive. Zero means the default (2).
	Retries int
	// Cluster tunes the K-means iteration.
	Cluster cluster.Options
}

func (c Config) withDefaults() Config {
	if c.ReplyTimeout <= 0 {
		c.ReplyTimeout = 100 * time.Millisecond
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	return c
}

// Validate reports whether the config is usable for numCaches caches.
func (c Config) Validate(numCaches int) error {
	switch {
	case c.L < 2:
		return fmt.Errorf("protocol: L must be >= 2, got %d", c.L)
	case c.M < 1:
		return fmt.Errorf("protocol: M must be >= 1, got %d", c.M)
	case c.M*(c.L-1) > numCaches:
		return fmt.Errorf("protocol: PLSet size M*(L-1)=%d exceeds %d caches", c.M*(c.L-1), numCaches)
	case c.K < 1 || c.K > numCaches:
		return fmt.Errorf("protocol: K=%d out of range [1,%d]", c.K, numCaches)
	case c.Theta < 0:
		return fmt.Errorf("protocol: Theta must be >= 0, got %v", c.Theta)
	case c.Retries < 0:
		return fmt.Errorf("protocol: Retries must be >= 0, got %d", c.Retries)
	}
	return c.Cluster.Validate()
}

// Result is the outcome of a distributed group formation run.
type Result struct {
	// Landmarks is the chosen landmark set (origin first).
	Landmarks []probe.Endpoint
	// Assignments maps each responsive cache to its group.
	Assignments map[topology.CacheIndex]int
	// Groups lists members per group ID.
	Groups [][]topology.CacheIndex
	// Centers are the final cluster centers in feature space.
	Centers []cluster.Vector
	// Unresponsive lists caches that never answered the feature round;
	// they are not part of any group.
	Unresponsive []topology.CacheIndex
	// UnackedAssignments lists caches whose assignment was sent but never
	// acknowledged (they may or may not have applied it).
	UnackedAssignments []topology.CacheIndex
	// MessagesSent counts every protocol message the coordinator sent.
	MessagesSent int64
}

// Coordinator drives the distributed protocol. Build one per run.
type Coordinator struct {
	cfg       Config
	n         int
	transport Transport
	inbox     <-chan Message
	src       *simrand.Source
	seq       uint64
	sent      int64
}

// NewCoordinator builds a coordinator for a network of numCaches agents.
func NewCoordinator(cfg Config, numCaches int, transport Transport, src *simrand.Source) (*Coordinator, error) {
	if transport == nil {
		return nil, errors.New("protocol: nil transport")
	}
	if src == nil {
		return nil, errors.New("protocol: nil random source")
	}
	if err := cfg.Validate(numCaches); err != nil {
		return nil, err
	}
	return &Coordinator{
		cfg:       cfg.withDefaults(),
		n:         numCaches,
		transport: transport,
		inbox:     transport.Register(CoordinatorAddr()),
		src:       src,
	}, nil
}

// Run executes the five protocol rounds and returns the formed groups.
func (c *Coordinator) Run() (*Result, error) {
	// Round 1: PLSet probing.
	plIdx, err := c.src.SampleWithoutReplacement(c.n, c.cfg.M*(c.cfg.L-1))
	if err != nil {
		return nil, fmt.Errorf("sample PLSet: %w", err)
	}
	plset := make([]topology.CacheIndex, len(plIdx))
	for i, v := range plIdx {
		plset[i] = topology.CacheIndex(v)
	}
	plTargets := make([]probe.Endpoint, 0, len(plset)+1)
	plTargets = append(plTargets, probe.Origin())
	for _, ci := range plset {
		plTargets = append(plTargets, probe.Cache(ci))
	}
	plReplies := c.requestRound(plset, plTargets)
	if len(plReplies) < c.cfg.L-1 {
		return nil, fmt.Errorf("protocol: only %d of %d PLSet members responded; need >= %d",
			len(plReplies), len(plset), c.cfg.L-1)
	}

	// Round 2: landmark selection over the gathered matrix.
	landmarks := c.selectLandmarks(plset, plTargets, plReplies)

	// Round 3: feature probing by every cache.
	all := make([]topology.CacheIndex, c.n)
	for i := range all {
		all[i] = topology.CacheIndex(i)
	}
	featReplies := c.requestRound(all, landmarks)
	if len(featReplies) < c.cfg.K {
		return nil, fmt.Errorf("protocol: only %d caches responded; need >= K=%d", len(featReplies), c.cfg.K)
	}

	// Round 4: clustering.
	responsive := make([]topology.CacheIndex, 0, len(featReplies))
	for _, ci := range all {
		if _, ok := featReplies[ci]; ok {
			responsive = append(responsive, ci)
		}
	}
	points := make([]cluster.Vector, len(responsive))
	serverDist := make([]float64, len(responsive))
	for i, ci := range responsive {
		rtts := featReplies[ci]
		fv := make(cluster.Vector, len(rtts))
		for j, v := range rtts {
			if v < 0 {
				v = 0 // failed single measurement: degrade, don't discard
			}
			fv[j] = v
		}
		points[i] = fv
		serverDist[i] = fv[0] // landmark 0 is the origin
	}
	var seeder cluster.Seeder = cluster.UniformSeeder{}
	if c.cfg.Theta > 0 {
		weights := make([]float64, len(serverDist))
		for i, d := range serverDist {
			if d < 1 {
				d = 1
			}
			weights[i] = 1 / math.Pow(d, c.cfg.Theta)
		}
		seeder = cluster.WeightedSeeder{Weights: weights}
	}
	k := c.cfg.K
	if k > len(points) {
		k = len(points)
	}
	clustered, err := cluster.KMeans(points, k, seeder, c.cfg.Cluster, c.src.Split("kmeans"))
	if err != nil {
		return nil, fmt.Errorf("cluster features: %w", err)
	}

	res := &Result{
		Landmarks:   landmarks,
		Assignments: make(map[topology.CacheIndex]int, len(responsive)),
		Groups:      make([][]topology.CacheIndex, k),
		Centers:     clustered.Centers,
	}
	for i, ci := range responsive {
		g := clustered.Assignments[i]
		res.Assignments[ci] = g
		res.Groups[g] = append(res.Groups[g], ci)
	}
	for _, ci := range all {
		if _, ok := featReplies[ci]; !ok {
			res.Unresponsive = append(res.Unresponsive, ci)
		}
	}

	// Round 5: assignment broadcast with acknowledgements.
	unacked := c.assignRound(res)
	res.UnackedAssignments = unacked
	res.MessagesSent = c.sent
	return res, nil
}

// requestRound sends probe requests for targets to every peer, retrying
// unanswered peers, and returns the RTT vectors keyed by cache index.
func (c *Coordinator) requestRound(peers []topology.CacheIndex, targets []probe.Endpoint) map[topology.CacheIndex][]float64 {
	replies := make(map[topology.CacheIndex][]float64, len(peers))
	pending := make(map[topology.CacheIndex]bool, len(peers))
	for _, p := range peers {
		pending[p] = true
	}
	seqOf := make(map[uint64]topology.CacheIndex)

	for attempt := 0; attempt <= c.cfg.Retries && len(pending) > 0; attempt++ {
		for p := range pending {
			c.seq++
			seqOf[c.seq] = p
			c.sent++
			_ = c.transport.Send(Message{
				Kind:    MsgProbeRequest,
				From:    CoordinatorAddr(),
				To:      CacheAddr(p),
				Seq:     c.seq,
				Targets: targets,
			})
		}
		deadline := time.After(c.cfg.ReplyTimeout)
	wait:
		for len(pending) > 0 {
			select {
			case msg, ok := <-c.inbox:
				if !ok {
					return replies
				}
				if msg.Kind != MsgProbeReply {
					continue
				}
				p, ok := seqOf[msg.Seq]
				if !ok || !pending[p] {
					continue // stale or duplicate
				}
				if len(msg.RTTs) != len(targets) {
					continue // malformed
				}
				replies[p] = msg.RTTs
				delete(pending, p)
			case <-deadline:
				break wait
			}
		}
	}
	return replies
}

// selectLandmarks runs the greedy max-min selection over the PLSet's
// measured matrix. plTargets[0] is the origin; plTargets[i+1] is plset[i].
func (c *Coordinator) selectLandmarks(plset []topology.CacheIndex, plTargets []probe.Endpoint, replies map[topology.CacheIndex][]float64) []probe.Endpoint {
	// dist[i][j] over plTargets indices; unknown pairs default to 0 so
	// that candidates with missing data are never preferred.
	n := len(plTargets)
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i, ci := range plset {
		rtts, ok := replies[ci]
		if !ok {
			continue
		}
		row := i + 1 // offset past the origin
		for j, v := range rtts {
			if v < 0 {
				continue
			}
			if dist[row][j] == 0 {
				dist[row][j] = v
			} else {
				dist[row][j] = (dist[row][j] + v) / 2
			}
			if dist[j][row] == 0 {
				dist[j][row] = dist[row][j]
			}
		}
	}

	responsive := func(i int) bool {
		if i == 0 {
			return true
		}
		_, ok := replies[plset[i-1]]
		return ok
	}

	chosen := []int{0}
	inSet := make([]bool, n)
	inSet[0] = true
	minToSet := make([]float64, n)
	for i := range minToSet {
		minToSet[i] = dist[i][0]
	}
	for len(chosen) < c.cfg.L {
		best := -1
		for i := 1; i < n; i++ {
			if inSet[i] || !responsive(i) {
				continue
			}
			if best < 0 || minToSet[i] > minToSet[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, best)
		inSet[best] = true
		for i := range minToSet {
			if d := dist[i][best]; d < minToSet[i] {
				minToSet[i] = d
			}
		}
	}
	out := make([]probe.Endpoint, len(chosen))
	for i, idx := range chosen {
		out[i] = plTargets[idx]
	}
	return out
}

// assignRound broadcasts assignments and collects acknowledgements,
// retrying unacked peers. It returns the caches that never acked.
func (c *Coordinator) assignRound(res *Result) []topology.CacheIndex {
	pending := make(map[topology.CacheIndex]bool, len(res.Assignments))
	for ci := range res.Assignments {
		pending[ci] = true
	}
	seqOf := make(map[uint64]topology.CacheIndex)

	for attempt := 0; attempt <= c.cfg.Retries && len(pending) > 0; attempt++ {
		for ci := range pending {
			g := res.Assignments[ci]
			c.seq++
			seqOf[c.seq] = ci
			c.sent++
			_ = c.transport.Send(Message{
				Kind:    MsgAssign,
				From:    CoordinatorAddr(),
				To:      CacheAddr(ci),
				Seq:     c.seq,
				Group:   g,
				Members: res.Groups[g],
			})
		}
		deadline := time.After(c.cfg.ReplyTimeout)
	wait:
		for len(pending) > 0 {
			select {
			case msg, ok := <-c.inbox:
				if !ok {
					break wait
				}
				if msg.Kind != MsgAssignAck {
					continue
				}
				ci, ok := seqOf[msg.Seq]
				if !ok || !pending[ci] {
					continue
				}
				delete(pending, ci)
			case <-deadline:
				break wait
			}
		}
	}
	var unacked []topology.CacheIndex
	for ci := range pending {
		unacked = append(unacked, ci)
	}
	return unacked
}
