package protocol

import (
	"sync"
	"testing"
	"time"

	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// drainBox reads every message currently queued in box without blocking.
func drainBox(box <-chan Message) []Message {
	var out []Message
	for {
		select {
		case msg := <-box:
			out = append(out, msg)
		default:
			return out
		}
	}
}

func TestFaultConfigValidate(t *testing.T) {
	bad := []FaultConfig{
		{Loss: -0.1},
		{Loss: 1},
		{DupProb: 1.5},
		{DelayProb: -1},
		{MaxDelay: -1},
		{LinkLoss: map[Link]float64{{From: CoordinatorAddr(), To: CacheAddr(1)}: 1}},
	}
	for i, fc := range bad {
		if _, err := NewFaultTransport(fc, nil); err == nil {
			t.Fatalf("bad fault config %d accepted: %+v", i, fc)
		}
	}
	if _, err := NewFaultTransport(FaultConfig{Loss: 0.5, DupProb: 0.5, DelayProb: 0.5}, simrand.New(1)); err != nil {
		t.Fatalf("valid fault config rejected: %v", err)
	}
}

func TestTransportDuplication(t *testing.T) {
	tr, err := NewFaultTransport(FaultConfig{DupProb: 0.5}, simrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	box := tr.Register(CacheAddr(0))
	const n = 40
	for i := 0; i < n; i++ {
		if err := tr.Send(Message{From: CoordinatorAddr(), To: CacheAddr(0), Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		drainBox(box) // keep the mailbox from overflowing
	}
	st := tr.Stats()
	if st.Sent != n {
		t.Fatalf("Sent = %d, want %d", st.Sent, n)
	}
	if st.Duplicated == 0 {
		t.Fatal("DupProb=0.5 duplicated nothing over 40 sends")
	}
	if st.Delivered != st.Sent+st.Duplicated {
		t.Fatalf("Delivered %d != Sent %d + Duplicated %d", st.Delivered, st.Sent, st.Duplicated)
	}
}

func TestTransportDelayReorders(t *testing.T) {
	tr, err := NewFaultTransport(FaultConfig{DelayProb: 0.5, MaxDelay: 3}, simrand.New(22))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	box := tr.Register(CacheAddr(0))
	var got []Message
	const n = 40
	for i := 0; i < n; i++ {
		if err := tr.Send(Message{From: CoordinatorAddr(), To: CacheAddr(0), Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		got = append(got, drainBox(box)...)
	}
	st := tr.Stats()
	if st.Delayed == 0 {
		t.Fatal("DelayProb=0.5 delayed nothing over 40 sends")
	}
	inversions := 0
	for i := 1; i < len(got); i++ {
		if got[i].Seq < got[i-1].Seq {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("delayed messages were never reordered")
	}
	// Nothing is lost: every delivered or still-held copy is accounted for.
	if held := st.Sent - st.Delivered; held < 0 || int(st.Delivered) != len(got) {
		t.Fatalf("accounting: sent=%d delivered=%d received=%d", st.Sent, st.Delivered, len(got))
	}
}

func TestTransportPerLinkLossOverride(t *testing.T) {
	flaky := Link{From: CoordinatorAddr(), To: CacheAddr(0)}
	tr, err := NewFaultTransport(FaultConfig{LinkLoss: map[Link]float64{flaky: 0.9}}, simrand.New(23))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	box0 := tr.Register(CacheAddr(0))
	box1 := tr.Register(CacheAddr(1))
	for i := 0; i < 30; i++ {
		_ = tr.Send(Message{From: CoordinatorAddr(), To: CacheAddr(0), Seq: uint64(i)})
		_ = tr.Send(Message{From: CoordinatorAddr(), To: CacheAddr(1), Seq: uint64(i)})
	}
	onFlaky, onClean := len(drainBox(box0)), len(drainBox(box1))
	if onClean != 30 {
		t.Fatalf("clean link delivered %d/30", onClean)
	}
	if onFlaky >= 15 {
		t.Fatalf("90%%-loss link delivered %d/30", onFlaky)
	}
	if st := tr.Stats(); st.DroppedLoss != int64(30-onFlaky) {
		t.Fatalf("DroppedLoss = %d, want %d", st.DroppedLoss, 30-onFlaky)
	}
}

func TestTransportPartitionAndHeal(t *testing.T) {
	tr, err := NewChanTransport(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	box0 := tr.Register(CacheAddr(0))
	box1 := tr.Register(CacheAddr(1))
	tr.Register(CoordinatorAddr())

	tr.Partition(CacheAddr(0), CacheAddr(1))
	// Across the cut: dropped silently.
	if err := tr.Send(Message{From: CoordinatorAddr(), To: CacheAddr(0)}); err != nil {
		t.Fatal(err)
	}
	if got := drainBox(box0); len(got) != 0 {
		t.Fatalf("partitioned cache received %d messages", len(got))
	}
	// Within the isolated side: still flows.
	if err := tr.Send(Message{From: CacheAddr(0), To: CacheAddr(1)}); err != nil {
		t.Fatal(err)
	}
	if got := drainBox(box1); len(got) != 1 {
		t.Fatalf("intra-partition delivery failed: got %d messages", len(got))
	}
	if st := tr.Stats(); st.DroppedPartition != 1 {
		t.Fatalf("DroppedPartition = %d, want 1", st.DroppedPartition)
	}
	tr.Heal()
	if err := tr.Send(Message{From: CoordinatorAddr(), To: CacheAddr(0)}); err != nil {
		t.Fatal(err)
	}
	if got := drainBox(box0); len(got) != 1 {
		t.Fatalf("healed link delivery failed: got %d messages", len(got))
	}
}

func TestTransportKillAfterAndRestart(t *testing.T) {
	tr, err := NewChanTransport(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	box := tr.Register(CacheAddr(0))
	tr.KillAfter(CacheAddr(0), 2)
	for i := 0; i < 5; i++ {
		if err := tr.Send(Message{From: CoordinatorAddr(), To: CacheAddr(0), Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := drainBox(box)
	if len(got) != 2 || got[0].Seq != 0 || got[1].Seq != 1 {
		t.Fatalf("KillAfter(2) delivered %v", got)
	}
	if st := tr.Stats(); st.DroppedDead != 3 {
		t.Fatalf("DroppedDead = %d, want 3", st.DroppedDead)
	}
	tr.Restart(CacheAddr(0))
	if err := tr.Send(Message{From: CoordinatorAddr(), To: CacheAddr(0), Seq: 9}); err != nil {
		t.Fatal(err)
	}
	if got := drainBox(box); len(got) != 1 || got[0].Seq != 9 {
		t.Fatalf("restarted node got %v", got)
	}
	// KillAfter with n <= 0 crashes immediately.
	tr.KillAfter(CacheAddr(0), 0)
	_ = tr.Send(Message{From: CoordinatorAddr(), To: CacheAddr(0)})
	if got := drainBox(box); len(got) != 0 {
		t.Fatalf("immediately-killed node received %d messages", len(got))
	}
}

// TestTransportStatsConservation hammers every fault stage at once and
// checks the copy-accounting identity: each sent message becomes exactly
// one copy (plus one per duplication), and every copy is delivered or
// attributed to exactly one drop counter once the transport closes.
func TestTransportStatsConservation(t *testing.T) {
	tr, err := NewFaultTransport(FaultConfig{Loss: 0.2, DupProb: 0.3, DelayProb: 0.4, MaxDelay: 5}, simrand.New(24))
	if err != nil {
		t.Fatal(err)
	}
	boxes := make([]<-chan Message, 4)
	for i := range boxes {
		boxes[i] = tr.Register(CacheAddr(topology.CacheIndex(i)))
	}
	tr.Register(CoordinatorAddr())
	tr.Kill(CacheAddr(3))
	tr.Partition(CacheAddr(2))
	for i := 0; i < 50; i++ {
		for ci := 0; ci < 4; ci++ {
			_ = tr.Send(Message{From: CoordinatorAddr(), To: CacheAddr(topology.CacheIndex(ci)), Seq: uint64(i)})
		}
		for _, box := range boxes {
			drainBox(box)
		}
	}
	tr.Close() // drops still-held copies into DroppedClosed
	st := tr.Stats()
	copies := st.Sent + st.Duplicated
	accounted := st.Delivered + st.DroppedLoss + st.DroppedDead + st.DroppedPartition + st.DroppedOverflow + st.DroppedClosed
	if copies != accounted {
		t.Fatalf("copy accounting broken: sent+dup=%d, accounted=%d (%+v)", copies, accounted, st)
	}
	if st.DroppedDead == 0 || st.DroppedPartition == 0 || st.DroppedLoss == 0 || st.Duplicated == 0 || st.Delayed == 0 {
		t.Fatalf("fault stages idle in conservation hammer: %+v", st)
	}
}

// TestTransportSameSeedSameFaults replays an identical send sequence over
// two same-seed transports and demands identical per-message fates — the
// per-link stream contract at the transport level.
func TestTransportSameSeedSameFaults(t *testing.T) {
	run := func() ([]Message, TransportStats) {
		tr, err := NewFaultTransport(FaultConfig{Loss: 0.25, DupProb: 0.25, DelayProb: 0.25, MaxDelay: 3}, simrand.New(25))
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		box := tr.Register(CacheAddr(0))
		var got []Message
		for i := 0; i < 60; i++ {
			_ = tr.Send(Message{From: CoordinatorAddr(), To: CacheAddr(0), Seq: uint64(i)})
			got = append(got, drainBox(box)...)
		}
		return got, tr.Stats()
	}
	gotA, stA := run()
	gotB, stB := run()
	if stA != stB {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", stA, stB)
	}
	if len(gotA) != len(gotB) {
		t.Fatalf("same seed delivered %d vs %d messages", len(gotA), len(gotB))
	}
	for i := range gotA {
		if gotA[i].Seq != gotB[i].Seq {
			t.Fatalf("delivery order diverged at %d: %d vs %d", i, gotA[i].Seq, gotB[i].Seq)
		}
	}
}

// TestTransportLifecycleRace hammers Send against Kill, Restart,
// Partition, Heal, and Close from many goroutines under the race
// detector. The old transport released its mutex before the channel send
// and could panic ("send on closed channel") against a concurrent Close;
// this pins the fix.
func TestTransportLifecycleRace(t *testing.T) {
	tr, err := NewFaultTransport(FaultConfig{Loss: 0.1, DupProb: 0.2, DelayProb: 0.2}, simrand.New(26))
	if err != nil {
		t.Fatal(err)
	}
	const nAddrs = 4
	boxes := make([]<-chan Message, nAddrs)
	for i := range boxes {
		boxes[i] = tr.Register(CacheAddr(topology.CacheIndex(i)))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers drain mailboxes until they close.
	for _, box := range boxes {
		box := box
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range box {
			}
		}()
	}
	// Senders spam all addresses, tolerating post-Close errors.
	for s := 0; s < 4; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				to := CacheAddr(topology.CacheIndex(i % nAddrs))
				if err := tr.Send(Message{From: CoordinatorAddr(), To: to, Seq: uint64(s*1_000_000 + i)}); err != nil && err != ErrTransportClosed {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}()
	}
	// Lifecycle chaos: crash/restart, partition/heal, scheduled kills.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			addr := CacheAddr(topology.CacheIndex(i % nAddrs))
			switch i % 5 {
			case 0:
				tr.Kill(addr)
			case 1:
				tr.Restart(addr)
			case 2:
				tr.Partition(addr)
			case 3:
				tr.Heal()
			case 4:
				tr.KillAfter(addr, 2)
				tr.Restart(addr)
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	tr.Close() // must not panic against in-flight Sends
	close(stop)
	wg.Wait()
	if err := tr.Send(Message{From: CoordinatorAddr(), To: CacheAddr(0)}); err != ErrTransportClosed {
		t.Fatalf("send after close = %v, want ErrTransportClosed", err)
	}
}
