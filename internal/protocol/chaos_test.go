package protocol

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/verify"
)

// chaosCaches is the network size of the chaos matrix. Small enough that
// the coordinator's mailbox never overflows (overflow order would depend
// on reader speed), large enough for partitions and crashes to bite.
const chaosCaches = 24

var (
	chaosOnce   sync.Once
	chaosProber *probe.Prober
	chaosSetup  error
)

// sharedProber builds one network and prober for the whole chaos matrix.
// Prober.Measure is a pure function of (seed, endpoint pair) and safe for
// concurrent use, so every scenario can share it.
func sharedProber(t *testing.T) *probe.Prober {
	t.Helper()
	chaosOnce.Do(func() {
		g, err := topology.GenerateTransitStub(topology.DefaultTransitStubParams(), simrand.New(7001))
		if err != nil {
			chaosSetup = err
			return
		}
		nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: chaosCaches}, simrand.New(7002))
		if err != nil {
			chaosSetup = err
			return
		}
		chaosProber, chaosSetup = probe.NewProber(nw, probe.DefaultConfig(), simrand.New(7003))
	})
	if chaosSetup != nil {
		t.Fatal(chaosSetup)
	}
	return chaosProber
}

// faultStack builds a fresh fault transport with running agents over the
// shared prober.
func faultStack(t *testing.T, fc FaultConfig, seed int64) *ChanTransport {
	t.Helper()
	prober := sharedProber(t)
	tr, err := NewFaultTransport(fc, simrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	agents := make([]*Agent, chaosCaches)
	for i := range agents {
		a, err := NewAgent(topology.CacheIndex(i), prober, tr)
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
	}
	t.Cleanup(func() {
		for _, a := range agents {
			a.Stop()
		}
		tr.Close()
	})
	return tr
}

func chaosCfg() Config {
	return Config{
		L: 4, M: 2, K: 3,
		ReplyTimeout: 150 * time.Millisecond,
		Retries:      6,
		BackoffBase:  time.Millisecond,
		RoundBudget:  20 * time.Second,
	}
}

// runProtocol executes coord.Run under a watchdog: a hang past the
// timeout or a panic fails the test rather than wedging the suite.
func runProtocol(t *testing.T, coord *Coordinator, timeout time.Duration) (*Result, error) {
	t.Helper()
	type outcome struct {
		res      *Result
		err      error
		panicked any
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{panicked: r}
			}
		}()
		res, err := coord.Run()
		ch <- outcome{res: res, err: err}
	}()
	select {
	case o := <-ch:
		if o.panicked != nil {
			t.Fatalf("protocol panicked: %v", o.panicked)
		}
		return o.res, o.err
	case <-time.After(timeout):
		t.Fatalf("protocol hung past %v", timeout)
	}
	return nil, nil
}

// assertValidResult checks the conservation invariants a completed run
// must satisfy regardless of how hostile the transport was.
func assertValidResult(t *testing.T, res *Result, n int) {
	t.Helper()
	if got := len(res.Assignments) + len(res.Unresponsive); got != n {
		t.Fatalf("conservation violated: %d assigned + %d unresponsive != %d",
			len(res.Assignments), len(res.Unresponsive), n)
	}
	covered := 0
	for g, members := range res.Groups {
		if len(members) == 0 {
			t.Fatalf("group %d empty", g)
		}
		for _, ci := range members {
			if res.Assignments[ci] != g {
				t.Fatalf("cache %d in group %d's member list but assigned to %d",
					ci, g, res.Assignments[ci])
			}
		}
		covered += len(members)
	}
	if covered != len(res.Assignments) {
		t.Fatalf("groups cover %d caches, assignments %d", covered, len(res.Assignments))
	}
	if !sort.SliceIsSorted(res.UnackedAssignments, func(i, j int) bool {
		return res.UnackedAssignments[i] < res.UnackedAssignments[j]
	}) {
		t.Fatalf("unacked assignments not ascending: %v", res.UnackedAssignments)
	}
	for _, ci := range res.UnackedAssignments {
		if _, ok := res.Assignments[ci]; !ok {
			t.Fatalf("unacked cache %d has no assignment", ci)
		}
	}
	if res.Retries < 0 || res.DuplicateReplies < 0 || res.TimedOutWaits < 0 || res.MessagesSent <= 0 {
		t.Fatalf("bad counters: %+v", res)
	}
}

// assertTypedFailure checks that a failed run surfaced a *RoundError
// wrapping one of the protocol's failure sentinels.
func assertTypedFailure(t *testing.T, err error) {
	t.Helper()
	var re *RoundError
	if !errors.As(err, &re) {
		t.Fatalf("protocol failure is not a *RoundError: %v", err)
	}
	if re.Round == "" {
		t.Fatalf("RoundError has no round name: %v", err)
	}
	if re.Round != "cluster" &&
		!errors.Is(err, ErrQuorum) && !errors.Is(err, ErrBudgetExceeded) && !errors.Is(err, ErrTransportClosed) {
		t.Fatalf("round %q failure wraps no known sentinel: %v", re.Round, err)
	}
}

// TestChaosMatrix crosses message loss, duplication, delay/reordering,
// partitions, and crashes (upfront and mid-run), asserting that every
// combination either completes with a conservation-valid Plan or fails
// with a typed error — never panics, never hangs.
func TestChaosMatrix(t *testing.T) {
	type disruption struct {
		name  string
		apply func(tr *ChanTransport)
	}
	disruptions := []disruption{
		{name: "calm", apply: func(*ChanTransport) {}},
		{name: "partition", apply: func(tr *ChanTransport) {
			tr.Partition(CacheAddr(18), CacheAddr(19), CacheAddr(20),
				CacheAddr(21), CacheAddr(22), CacheAddr(23))
		}},
		{name: "crash", apply: func(tr *ChanTransport) {
			for _, ci := range []topology.CacheIndex{20, 21, 22, 23} {
				tr.Kill(CacheAddr(ci))
			}
		}},
		{name: "crash-midrun", apply: func(tr *ChanTransport) {
			tr.KillAfter(CacheAddr(5), 2)
			tr.KillAfter(CacheAddr(6), 1)
		}},
	}
	idx := 0
	for _, loss := range []float64{0, 0.3} {
		for _, dup := range []float64{0, 0.25} {
			for _, delay := range []float64{0, 0.3} {
				for _, d := range disruptions {
					idx++
					seed := int64(8000 + idx)
					fc := FaultConfig{Loss: loss, DupProb: dup, DelayProb: delay}
					name := fmt.Sprintf("loss=%v,dup=%v,delay=%v,%s", loss, dup, delay, d.name)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						tr := faultStack(t, fc, seed)
						d.apply(tr)
						coord, err := NewCoordinator(chaosCfg(), chaosCaches, tr, simrand.New(seed+100000))
						if err != nil {
							t.Fatal(err)
						}
						res, err := runProtocol(t, coord, 30*time.Second)
						if err != nil {
							assertTypedFailure(t, err)
							return
						}
						assertValidResult(t, res, chaosCaches)
					})
				}
			}
		}
	}
}

// TestChaosDeterministicReplay runs the same hostile scenario twice with
// identical seeds and demands bit-identical Results — including the retry,
// duplicate, and timeout counters — exercising the per-link fault-stream
// determinism contract end to end.
func TestChaosDeterministicReplay(t *testing.T) {
	fc := FaultConfig{Loss: 0.2, DupProb: 0.25, DelayProb: 0.3}
	run := func() (*Result, error) {
		tr := faultStack(t, fc, 9001)
		tr.KillAfter(CacheAddr(7), 3)
		tr.Partition(CacheAddr(22), CacheAddr(23))
		cfg := chaosCfg()
		cfg.ReplyTimeout = 300 * time.Millisecond
		coord, err := NewCoordinator(cfg, chaosCaches, tr, simrand.New(9002))
		if err != nil {
			t.Fatal(err)
		}
		return runProtocol(t, coord, 30*time.Second)
	}
	resA, errA := run()
	resB, errB := run()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("same seed diverged: errA=%v errB=%v", errA, errB)
	}
	if errA != nil {
		if errA.Error() != errB.Error() {
			t.Fatalf("same seed produced different errors:\n%v\n%v", errA, errB)
		}
		return
	}
	if diff := diffResults(resA, resB); diff != "" {
		t.Fatalf("same seed produced different results: %s", diff)
	}
}

// diffResults reports the first field where two Results differ ("" when
// bit-identical), so determinism failures name the diverging counter.
func diffResults(a, b *Result) string {
	if fmt.Sprintf("%+v", a.Landmarks) != fmt.Sprintf("%+v", b.Landmarks) {
		return fmt.Sprintf("landmarks %v vs %v", a.Landmarks, b.Landmarks)
	}
	if fmt.Sprintf("%v", a.Assignments) != fmt.Sprintf("%v", b.Assignments) {
		return fmt.Sprintf("assignments %v vs %v", a.Assignments, b.Assignments)
	}
	if fmt.Sprintf("%v", a.Groups) != fmt.Sprintf("%v", b.Groups) {
		return fmt.Sprintf("groups %v vs %v", a.Groups, b.Groups)
	}
	if fmt.Sprintf("%v", a.Centers) != fmt.Sprintf("%v", b.Centers) {
		return "centers differ"
	}
	if fmt.Sprintf("%v", a.Unresponsive) != fmt.Sprintf("%v", b.Unresponsive) {
		return fmt.Sprintf("unresponsive %v vs %v", a.Unresponsive, b.Unresponsive)
	}
	if fmt.Sprintf("%v", a.UnackedAssignments) != fmt.Sprintf("%v", b.UnackedAssignments) {
		return fmt.Sprintf("unacked %v vs %v", a.UnackedAssignments, b.UnackedAssignments)
	}
	type counters struct {
		Sent, Retries, Dups, Timeouts int64
		PLSize, PLResp                int
		Degraded                      bool
	}
	ca := counters{a.MessagesSent, a.Retries, a.DuplicateReplies, a.TimedOutWaits, a.PLSetSize, a.PLSetResponsive, a.Degraded}
	cb := counters{b.MessagesSent, b.Retries, b.DuplicateReplies, b.TimedOutWaits, b.PLSetSize, b.PLSetResponsive, b.Degraded}
	if ca != cb {
		return fmt.Sprintf("counters %+v vs %+v", ca, cb)
	}
	return ""
}

// TestRunLossSweepConservation sweeps the loss probability and asserts
// the responsive/unresponsive accounting stays conserved at every level.
func TestRunLossSweepConservation(t *testing.T) {
	for i, loss := range []float64{0, 0.1, 0.25, 0.4} {
		loss := loss
		t.Run(fmt.Sprintf("loss=%v", loss), func(t *testing.T) {
			t.Parallel()
			tr := faultStack(t, FaultConfig{Loss: loss}, int64(9100+i))
			coord, err := NewCoordinator(chaosCfg(), chaosCaches, tr, simrand.New(int64(9200+i)))
			if err != nil {
				t.Fatal(err)
			}
			res, err := runProtocol(t, coord, 30*time.Second)
			if err != nil {
				assertTypedFailure(t, err)
				return
			}
			assertValidResult(t, res, chaosCaches)
			if loss == 0 && (res.Retries != 0 || res.DuplicateReplies != 0 || len(res.Unresponsive) != 0) {
				t.Fatalf("lossless run reported faults: %+v", res)
			}
			if loss >= 0.25 && res.Retries == 0 {
				t.Fatalf("%v loss but no retries recorded", loss)
			}
		})
	}
}

// TestNoRetriesSentinel covers the Retries=0 remapping bug: the zero
// value still means "default", and the NoRetries sentinel now expresses
// an explicit single-attempt run.
func TestNoRetriesSentinel(t *testing.T) {
	if got := (Config{}).withDefaults().Retries; got != 2 {
		t.Fatalf("zero-value Retries defaulted to %d, want 2", got)
	}
	if got := (Config{Retries: NoRetries}).withDefaults().Retries; got != 0 {
		t.Fatalf("NoRetries mapped to %d retries, want 0", got)
	}
	if got := (Config{Retries: 5}).withDefaults().Retries; got != 5 {
		t.Fatalf("explicit Retries changed to %d, want 5", got)
	}
	cfg := chaosCfg()
	if err := (Config{L: cfg.L, M: cfg.M, K: cfg.K, Retries: NoRetries}).Validate(chaosCaches); err != nil {
		t.Fatalf("NoRetries rejected: %v", err)
	}

	// End to end: a single-attempt run on a lossy transport must never
	// re-send — exactly one message per peer per round.
	cfg.Retries = NoRetries
	tr := faultStack(t, FaultConfig{Loss: 0.15}, 9300)
	coord, err := NewCoordinator(cfg, chaosCaches, tr, simrand.New(9301))
	if err != nil {
		t.Fatal(err)
	}
	res, err := runProtocol(t, coord, 30*time.Second)
	if err != nil {
		assertTypedFailure(t, err) // a one-shot round may miss quorum; that is a valid outcome
		return
	}
	assertValidResult(t, res, chaosCaches)
	if res.Retries != 0 {
		t.Fatalf("NoRetries run recorded %d retries", res.Retries)
	}
	plset := cfg.M * (cfg.L - 1)
	want := int64(plset + chaosCaches + len(res.Assignments))
	if res.MessagesSent != want {
		t.Fatalf("single-attempt run sent %d messages, want exactly %d", res.MessagesSent, want)
	}
}

// TestRoundBudgetExceeded starves the PLSet round of both replies and
// budget and asserts the typed failure chain names everything: the round,
// the quorum miss, and the exhausted budget.
func TestRoundBudgetExceeded(t *testing.T) {
	tr := faultStack(t, FaultConfig{}, 9400)
	for i := 0; i < chaosCaches; i++ {
		tr.Kill(CacheAddr(topology.CacheIndex(i)))
	}
	cfg := chaosCfg()
	cfg.ReplyTimeout = 50 * time.Millisecond
	cfg.RoundBudget = time.Millisecond
	coord, err := NewCoordinator(cfg, chaosCaches, tr, simrand.New(9401))
	if err != nil {
		t.Fatal(err)
	}
	_, err = runProtocol(t, coord, 30*time.Second)
	if err == nil {
		t.Fatal("run succeeded with every cache dead and a 1ms budget")
	}
	var re *RoundError
	if !errors.As(err, &re) || re.Round != "plset" {
		t.Fatalf("expected plset RoundError, got %v", err)
	}
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("budget failure does not wrap ErrQuorum: %v", err)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("budget failure does not wrap ErrBudgetExceeded: %v", err)
	}
}

// TestBackoffScheduleDeterministic checks the jittered exponential
// schedule directly: growth up to the cap, jitter within [0.5,1.5), and
// identical draws for identical seeds.
func TestBackoffScheduleDeterministic(t *testing.T) {
	mk := func() *Coordinator {
		return &Coordinator{
			cfg: Config{
				BackoffBase: time.Millisecond,
				BackoffMax:  8 * time.Millisecond,
			},
			backoffSrc: simrand.New(77).Split("backoff"),
		}
	}
	sample := func(c *Coordinator) []time.Duration {
		var out []time.Duration
		for attempt := 1; attempt <= 6; attempt++ {
			base := c.cfg.BackoffBase << uint(attempt-1)
			if base > c.cfg.BackoffMax {
				base = c.cfg.BackoffMax
			}
			d := time.Duration(float64(base) * (0.5 + c.backoffSrc.Float64()))
			if d < base/2 || d >= base+base/2 {
				t.Fatalf("attempt %d: jittered %v outside [%v,%v)", attempt, d, base/2, base+base/2)
			}
			out = append(out, d)
		}
		return out
	}
	a, b := sample(mk()), sample(mk())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff schedule not deterministic: %v vs %v", a, b)
		}
	}
}

// TestStagesRecordProtocolRounds wires a Stages recorder through Config
// and asserts the per-round timings and run counters appear.
func TestStagesRecordProtocolRounds(t *testing.T) {
	stages := &verify.Stages{}
	cfg := chaosCfg()
	cfg.Stages = stages
	tr := faultStack(t, FaultConfig{Loss: 0.15}, 9500)
	coord, err := NewCoordinator(cfg, chaosCaches, tr, simrand.New(9501))
	if err != nil {
		t.Fatal(err)
	}
	res, err := runProtocol(t, coord, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]verify.StageStat)
	for _, st := range stages.Snapshot() {
		got[st.Name] = st
	}
	for _, name := range []string{"protocol-plset", "protocol-features", "protocol-assign"} {
		st, ok := got[name]
		if !ok {
			t.Fatalf("stage %q not recorded; have %v", name, stages.Snapshot())
		}
		if st.Count != 1 || st.Items <= 0 {
			t.Fatalf("stage %q recorded count=%d items=%d", name, st.Count, st.Items)
		}
	}
	if got["protocol-retries"].Items != res.Retries {
		t.Fatalf("stage retries %d != result %d", got["protocol-retries"].Items, res.Retries)
	}
	if got["protocol-duplicate-replies"].Items != res.DuplicateReplies {
		t.Fatalf("stage dups %d != result %d", got["protocol-duplicate-replies"].Items, res.DuplicateReplies)
	}
	if res.Retries == 0 {
		t.Fatal("15% loss but zero retries; stage counters untested")
	}
}

// TestSymmetricPLSetMatrix covers the landmark distance-matrix fill: both
// measured directions must be averaged into BOTH triangle entries (the
// old fill left dist[j][i] holding a single direction whenever it was
// written first, skewing the max-min selection).
func TestSymmetricPLSetMatrix(t *testing.T) {
	plset := []topology.CacheIndex{4, 9}
	plTargets := []probe.Endpoint{probe.Origin(), probe.Cache(4), probe.Cache(9)}
	replies := map[topology.CacheIndex][]float64{
		4: {10, 0, 6}, // cache 4 measured: origin=10, self=0, cache9=6
		9: {20, 8, 0}, // cache 9 measured: origin=20, cache4=8, self=0
	}
	dist := symmetricPLSetMatrix(plset, plTargets, replies)
	for i := range dist {
		for j := range dist[i] {
			if dist[i][j] != dist[j][i] {
				t.Fatalf("matrix asymmetric at (%d,%d): %v vs %v", i, j, dist[i][j], dist[j][i])
			}
		}
	}
	if dist[0][1] != 10 { // only cache 4 measured the origin leg
		t.Fatalf("dist[0][1] = %v, want 10", dist[0][1])
	}
	if dist[0][2] != 20 {
		t.Fatalf("dist[0][2] = %v, want 20", dist[0][2])
	}
	if dist[1][2] != 7 { // mean of the two directions (6 and 8)
		t.Fatalf("dist[1][2] = %v, want 7", dist[1][2])
	}

	// A failed direction (negative sentinel) falls back to the other one;
	// a fully unmeasured pair stays 0.
	replies[4][2] = -1
	dist = symmetricPLSetMatrix(plset, plTargets, replies)
	if dist[1][2] != 8 || dist[2][1] != 8 {
		t.Fatalf("one-directional pair = %v/%v, want 8/8", dist[1][2], dist[2][1])
	}
	delete(replies, 9)
	dist = symmetricPLSetMatrix(plset, plTargets, replies)
	if dist[1][2] != 0 {
		t.Fatalf("unmeasured pair = %v, want 0", dist[1][2])
	}
}
