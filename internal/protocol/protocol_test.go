package protocol

import (
	"sort"
	"testing"
	"time"

	"edgecachegroups/internal/metrics"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
)

// stack builds a network, prober, transport, and running agents.
func stack(t *testing.T, numCaches int, seed int64, loss float64) (*topology.Network, *ChanTransport, []*Agent) {
	t.Helper()
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStubParams(), simrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: numCaches}, simrand.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	prober, err := probe.NewProber(nw, probe.DefaultConfig(), simrand.New(seed+2))
	if err != nil {
		t.Fatal(err)
	}
	var lossSrc *simrand.Source
	if loss > 0 {
		lossSrc = simrand.New(seed + 3)
	}
	tr, err := NewChanTransport(loss, lossSrc)
	if err != nil {
		t.Fatal(err)
	}
	agents := make([]*Agent, numCaches)
	for i := range agents {
		a, err := NewAgent(topology.CacheIndex(i), prober, tr)
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
	}
	t.Cleanup(func() {
		for _, a := range agents {
			a.Stop()
		}
		tr.Close()
	})
	return nw, tr, agents
}

func defaultCfg(k int) Config {
	return Config{L: 6, M: 3, K: k, ReplyTimeout: 200 * time.Millisecond, Retries: 3}
}

func TestAddrAndKindStrings(t *testing.T) {
	if CoordinatorAddr().String() != "coordinator" {
		t.Fatal("coordinator addr string")
	}
	if CacheAddr(3).String() != "cache-3" {
		t.Fatal("cache addr string")
	}
	if !CoordinatorAddr().IsCoordinator() || CacheAddr(1).IsCoordinator() {
		t.Fatal("IsCoordinator")
	}
	if CacheAddr(5).Cache() != 5 {
		t.Fatal("Cache()")
	}
	for k, want := range map[MsgKind]string{
		MsgProbeRequest: "probe-request",
		MsgProbeReply:   "probe-reply",
		MsgAssign:       "assign",
		MsgAssignAck:    "assign-ack",
		MsgKind(99):     "MsgKind(99)",
	} {
		if k.String() != want {
			t.Fatalf("kind %d string = %q", k, k.String())
		}
	}
}

func TestConfigValidate(t *testing.T) {
	ok := defaultCfg(5)
	if err := ok.Validate(60); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{L: 1, M: 1, K: 2},
		{L: 4, M: 0, K: 2},
		{L: 20, M: 4, K: 2}, // PLSet too big for n=60
		{L: 4, M: 2, K: 0},
		{L: 4, M: 2, K: 61},
		{L: 4, M: 2, K: 2, Theta: -1},
		{L: 4, M: 2, K: 2, Retries: -2}, // below the NoRetries sentinel
		{L: 4, M: 2, K: 2, BackoffBase: -time.Second},
		{L: 4, M: 2, K: 2, BackoffMax: -time.Second},
		{L: 4, M: 2, K: 2, RoundBudget: -time.Second},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(60); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestTransportBasics(t *testing.T) {
	tr, err := NewChanTransport(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewChanTransport(1, nil); err == nil {
		t.Fatal("lossProb=1 accepted")
	}
	box := tr.Register(CacheAddr(1))
	if err := tr.Send(Message{To: CacheAddr(1), Kind: MsgAssign}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-box:
		if msg.Kind != MsgAssign {
			t.Fatalf("kind = %v", msg.Kind)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
	if err := tr.Send(Message{To: CacheAddr(9)}); err == nil {
		t.Fatal("send to unregistered addr accepted")
	}
	// Killed node swallows silently.
	tr.Kill(CacheAddr(1))
	if err := tr.Send(Message{To: CacheAddr(1)}); err != nil {
		t.Fatalf("send to killed node errored: %v", err)
	}
	select {
	case <-box:
		t.Fatal("killed node received a message")
	case <-time.After(20 * time.Millisecond):
	}
	tr.Close()
	if err := tr.Send(Message{To: CacheAddr(1)}); err != ErrTransportClosed {
		t.Fatalf("send after close = %v", err)
	}
	tr.Close() // idempotent
}

func TestRunFormsCompleteGroups(t *testing.T) {
	_, tr, agents := stack(t, 40, 400, 0)
	coord, err := NewCoordinator(defaultCfg(5), 40, tr, simrand.New(401))
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Landmarks) != 6 || !res.Landmarks[0].IsOrigin() {
		t.Fatalf("landmarks = %v", res.Landmarks)
	}
	if len(res.Unresponsive) != 0 {
		t.Fatalf("unresponsive = %v on a lossless transport", res.Unresponsive)
	}
	if len(res.UnackedAssignments) != 0 {
		t.Fatalf("unacked = %v on a lossless transport", res.UnackedAssignments)
	}
	if len(res.Assignments) != 40 {
		t.Fatalf("assignments cover %d caches", len(res.Assignments))
	}
	covered := 0
	for g, members := range res.Groups {
		if len(members) == 0 {
			t.Fatalf("group %d empty", g)
		}
		covered += len(members)
	}
	if covered != 40 {
		t.Fatalf("groups cover %d caches", covered)
	}
	// Every agent applied its assignment and got its member list.
	for i, a := range agents {
		group, members := a.Group()
		if group != res.Assignments[topology.CacheIndex(i)] {
			t.Fatalf("agent %d group %d != coordinator's %d", i, group, res.Assignments[topology.CacheIndex(i)])
		}
		if len(members) == 0 {
			t.Fatalf("agent %d has empty member list", i)
		}
	}
	if res.MessagesSent <= 0 {
		t.Fatal("no messages counted")
	}
}

func TestRunProducesProximityCoherentGroups(t *testing.T) {
	nw, tr, _ := stack(t, 80, 402, 0)
	coord, err := NewCoordinator(defaultCfg(8), 80, tr, simrand.New(403))
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	protoCost := metrics.AvgGroupInteractionCost(nw, res.Groups)

	src := simrand.New(404)
	randGroups := make([][]topology.CacheIndex, 8)
	for i := 0; i < 80; i++ {
		g := src.Intn(8)
		randGroups[g] = append(randGroups[g], topology.CacheIndex(i))
	}
	randCost := metrics.AvgGroupInteractionCost(nw, randGroups)
	if protoCost >= randCost {
		t.Fatalf("protocol groups (%v) no better than random (%v)", protoCost, randCost)
	}
}

func TestRunSurvivesMessageLoss(t *testing.T) {
	_, tr, _ := stack(t, 40, 405, 0.2)
	cfg := defaultCfg(4)
	cfg.Retries = 8
	coord, err := NewCoordinator(cfg, 40, tr, simrand.New(406))
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With 20% loss and 8 retries, nearly everyone should make it.
	if len(res.Assignments) < 35 {
		t.Fatalf("only %d/40 caches assigned under 20%% loss", len(res.Assignments))
	}
}

func TestRunHandlesCrashedCaches(t *testing.T) {
	_, tr, _ := stack(t, 40, 407, 0)
	// Crash 5 caches outside the likely PLSet... crash by address.
	crashed := []topology.CacheIndex{3, 11, 22, 33, 39}
	for _, ci := range crashed {
		tr.Kill(CacheAddr(ci))
	}
	cfg := defaultCfg(4)
	cfg.ReplyTimeout = 60 * time.Millisecond
	coord, err := NewCoordinator(cfg, 40, tr, simrand.New(408))
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments)+len(res.Unresponsive) != 40 {
		t.Fatalf("assignments %d + unresponsive %d != 40", len(res.Assignments), len(res.Unresponsive))
	}
	// All crashed caches must be reported unresponsive (none assigned).
	unr := make(map[topology.CacheIndex]bool)
	for _, ci := range res.Unresponsive {
		unr[ci] = true
	}
	for _, ci := range crashed {
		if !unr[ci] {
			t.Fatalf("crashed cache %d not reported unresponsive", ci)
		}
		if _, ok := res.Assignments[ci]; ok {
			t.Fatalf("crashed cache %d was assigned a group", ci)
		}
	}
}

func TestRunFailsWhenPLSetMostlyDead(t *testing.T) {
	_, tr, _ := stack(t, 20, 409, 0)
	// Kill everything: the PLSet round cannot gather enough members.
	for i := 0; i < 20; i++ {
		tr.Kill(CacheAddr(topology.CacheIndex(i)))
	}
	cfg := Config{L: 4, M: 2, K: 2, ReplyTimeout: 30 * time.Millisecond, Retries: 1}
	coord, err := NewCoordinator(cfg, 20, tr, simrand.New(410))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Run(); err == nil {
		t.Fatal("run succeeded with every cache dead")
	}
}

func TestSDSLThetaInProtocol(t *testing.T) {
	nw, tr, _ := stack(t, 100, 411, 0)
	cfg := defaultCfg(10)
	cfg.Theta = 2
	coord, err := NewCoordinator(cfg, 100, tr, simrand.New(412))
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Mean group size of the 20 nearest caches must be below the 20
	// farthest (the SDSL property), in expectation; allow equality to
	// avoid flakes at this scale.
	sizes := make([]int, len(res.Groups))
	for g, m := range res.Groups {
		sizes[g] = len(m)
	}
	var nearSum, farSum float64
	for _, ci := range nw.NearestCaches(20) {
		if g, ok := res.Assignments[ci]; ok {
			nearSum += float64(sizes[g])
		}
	}
	for _, ci := range nw.FarthestCaches(20) {
		if g, ok := res.Assignments[ci]; ok {
			farSum += float64(sizes[g])
		}
	}
	if nearSum > farSum {
		t.Fatalf("SDSL protocol: near mean size %v > far %v", nearSum/20, farSum/20)
	}
}

func TestNewCoordinatorErrors(t *testing.T) {
	tr, err := NewChanTransport(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(defaultCfg(2), 40, nil, simrand.New(1)); err == nil {
		t.Fatal("nil transport accepted")
	}
	if _, err := NewCoordinator(defaultCfg(2), 40, tr, nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewCoordinator(Config{L: 1, M: 1, K: 1}, 40, tr, simrand.New(1)); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestAgentStopIdempotent(t *testing.T) {
	tr, err := NewChanTransport(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStubParams(), simrand.New(413))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: 2}, simrand.New(414))
	if err != nil {
		t.Fatal(err)
	}
	prober, err := probe.NewProber(nw, probe.DefaultConfig(), simrand.New(415))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(0, prober, tr)
	if err != nil {
		t.Fatal(err)
	}
	a.Stop()
	a.Stop() // must not panic or deadlock
	group, _ := a.Group()
	if group != -1 {
		t.Fatalf("unassigned agent group = %d", group)
	}
	if _, err := NewAgent(1, nil, tr); err == nil {
		t.Fatal("nil prober accepted")
	}
	if _, err := NewAgent(1, prober, nil); err == nil {
		t.Fatal("nil transport accepted")
	}
}

// TestResultGroupsSorted ensures deterministic group member ordering for
// downstream consumers.
func TestResultGroupsMembersAreAscending(t *testing.T) {
	_, tr, _ := stack(t, 30, 416, 0)
	coord, err := NewCoordinator(defaultCfg(3), 30, tr, simrand.New(417))
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	for g, members := range res.Groups {
		if !sort.SliceIsSorted(members, func(a, b int) bool { return members[a] < members[b] }) {
			t.Fatalf("group %d members not ascending: %v", g, members)
		}
	}
}
