// Package protocol implements the group formation rounds as an actual
// distributed protocol: the GF-Coordinator and every edge cache run as
// concurrent agents exchanging messages over a pluggable transport.
//
// The paper describes the GF-Coordinator as "the node that coordinates the
// execution of the three steps" (§3) and lists "architectures, mechanisms,
// and system-level facilities for supporting scalable, efficient, and
// reliable cooperation" among its problem statement. internal/core
// implements the algorithms as a library; this package implements the
// coordination itself — request/reply probing rounds, retries, timeouts,
// and assignment broadcast — so that node failures and message loss are
// first-class behaviours rather than simulation shortcuts.
//
// Protocol rounds:
//
//  1. PLSet probing: the coordinator asks each potential landmark to
//     measure its RTT to the other PLSet members and the origin.
//  2. Landmark selection: greedy max-min over the gathered matrix.
//  3. Feature probing: every cache measures its RTT to each landmark.
//  4. Clustering: K-means (optionally SDSL-weighted) over the features.
//  5. Assignment: each cache is told its group ID and members.
package protocol

import (
	"fmt"

	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/topology"
)

// Addr addresses a protocol participant.
type Addr struct {
	coordinator bool
	cache       topology.CacheIndex
}

// CoordinatorAddr returns the coordinator's address.
func CoordinatorAddr() Addr { return Addr{coordinator: true} }

// CacheAddr returns the address of cache agent i.
func CacheAddr(i topology.CacheIndex) Addr { return Addr{cache: i} }

// IsCoordinator reports whether a addresses the coordinator.
func (a Addr) IsCoordinator() bool { return a.coordinator }

// Cache returns the cache index; valid only when !IsCoordinator().
func (a Addr) Cache() topology.CacheIndex { return a.cache }

// String implements fmt.Stringer.
func (a Addr) String() string {
	if a.coordinator {
		return "coordinator"
	}
	return fmt.Sprintf("cache-%d", int(a.cache))
}

// Link is a directed communication edge between two participants. The
// fault-model transport keys its per-link loss overrides and random
// streams by Link, so each direction of a pair fails independently — as
// asymmetric routes do on a real network.
type Link struct {
	From Addr
	To   Addr
}

// String implements fmt.Stringer.
func (l Link) String() string { return l.From.String() + "->" + l.To.String() }

// MsgKind discriminates protocol messages.
type MsgKind int

// Message kinds.
const (
	// MsgProbeRequest asks a cache to measure its RTT to Targets.
	MsgProbeRequest MsgKind = iota + 1
	// MsgProbeReply carries the measured RTTs, aligned with the request's
	// Targets.
	MsgProbeReply
	// MsgAssign tells a cache its cooperative group.
	MsgAssign
	// MsgAssignAck confirms an assignment.
	MsgAssignAck
)

// String implements fmt.Stringer.
func (k MsgKind) String() string {
	switch k {
	case MsgProbeRequest:
		return "probe-request"
	case MsgProbeReply:
		return "probe-reply"
	case MsgAssign:
		return "assign"
	case MsgAssignAck:
		return "assign-ack"
	default:
		return fmt.Sprintf("MsgKind(%d)", int(k))
	}
}

// Message is one protocol datagram.
type Message struct {
	Kind MsgKind
	From Addr
	To   Addr
	// Seq correlates replies with requests.
	Seq uint64
	// Targets are the endpoints to probe (MsgProbeRequest).
	Targets []probe.Endpoint
	// RTTs align with the corresponding request's Targets (MsgProbeReply).
	RTTs []float64
	// Group is the assigned group ID (MsgAssign / MsgAssignAck).
	Group int
	// Members lists the group's members (MsgAssign).
	Members []topology.CacheIndex
}
