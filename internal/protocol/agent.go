package protocol

import (
	"errors"
	"sync"

	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/topology"
)

// Agent is one edge cache's protocol endpoint: it answers probe requests
// by measuring RTTs through the prober and records its eventual group
// assignment.
type Agent struct {
	addr      Addr
	prober    *probe.Prober
	transport Transport
	inbox     <-chan Message

	mu      sync.Mutex
	group   int
	members []topology.CacheIndex

	stopOnce sync.Once
	stopped  chan struct{}
	done     chan struct{}
}

// NewAgent registers and starts the agent for cache i. Stop it with Stop.
func NewAgent(i topology.CacheIndex, prober *probe.Prober, transport Transport) (*Agent, error) {
	if prober == nil {
		return nil, errors.New("protocol: nil prober")
	}
	if transport == nil {
		return nil, errors.New("protocol: nil transport")
	}
	a := &Agent{
		addr:      CacheAddr(i),
		prober:    prober,
		transport: transport,
		inbox:     transport.Register(CacheAddr(i)),
		group:     -1,
		stopped:   make(chan struct{}),
		done:      make(chan struct{}),
	}
	go a.loop()
	return a, nil
}

// Addr returns the agent's address.
func (a *Agent) Addr() Addr { return a.addr }

// Group returns the agent's assigned group (-1 before assignment) and the
// group's member list.
func (a *Agent) Group() (int, []topology.CacheIndex) {
	a.mu.Lock()
	defer a.mu.Unlock()
	members := make([]topology.CacheIndex, len(a.members))
	copy(members, a.members)
	return a.group, members
}

// Stop signals the agent to exit and waits for it.
func (a *Agent) Stop() {
	a.stopOnce.Do(func() { close(a.stopped) })
	<-a.done
}

// loop is the agent's actor body.
func (a *Agent) loop() {
	defer close(a.done)
	for {
		select {
		case <-a.stopped:
			return
		case msg, ok := <-a.inbox:
			if !ok {
				return
			}
			a.handle(msg)
		}
	}
}

func (a *Agent) handle(msg Message) {
	switch msg.Kind {
	case MsgProbeRequest:
		rtts := make([]float64, len(msg.Targets))
		for i, tgt := range msg.Targets {
			v, err := a.prober.Measure(probe.Cache(a.addr.Cache()), tgt)
			if err != nil {
				// A failed measurement is reported as a negative sentinel;
				// the coordinator treats it as missing.
				v = -1
			}
			rtts[i] = v
		}
		// Reply delivery failures are the coordinator's problem (it
		// retries); the agent stays fire-and-forget.
		_ = a.transport.Send(Message{
			Kind: MsgProbeReply,
			From: a.addr,
			To:   msg.From,
			Seq:  msg.Seq,
			RTTs: rtts,
		})
	case MsgAssign:
		a.mu.Lock()
		a.group = msg.Group
		a.members = append([]topology.CacheIndex(nil), msg.Members...)
		a.mu.Unlock()
		_ = a.transport.Send(Message{
			Kind:  MsgAssignAck,
			From:  a.addr,
			To:    msg.From,
			Seq:   msg.Seq,
			Group: msg.Group,
		})
	}
}
