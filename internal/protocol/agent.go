package protocol

import (
	"errors"
	"sync"

	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/topology"
)

// AgentStats counts one agent's protocol-side work.
type AgentStats struct {
	// ProbeRequests is the number of distinct probe requests measured.
	ProbeRequests int64
	// DupProbeRequests is the number of duplicated probe requests answered
	// from the reply cache without re-measuring.
	DupProbeRequests int64
	// Assigns is the number of distinct assignments applied.
	Assigns int64
	// DupAssigns is the number of duplicated assignment messages re-acked.
	DupAssigns int64
}

// Agent is one edge cache's protocol endpoint: it answers probe requests
// by measuring RTTs through the prober and records its eventual group
// assignment. Requests are deduplicated by sequence number — a duplicated
// or retransmitted request is answered from a cached response instead of
// being re-executed, so the fault-injection transport's duplication never
// doubles measurement work or perturbs determinism.
type Agent struct {
	addr      Addr
	prober    *probe.Prober
	transport Transport
	inbox     <-chan Message

	mu      sync.Mutex
	group   int
	members []topology.CacheIndex
	stats   AgentStats

	// responses caches the reply sent for each request seq, for dedup and
	// retransmission. Seqs are unique per coordinator run, so the map is
	// bounded by the run's message count.
	responses map[uint64]Message

	stopOnce sync.Once
	stopped  chan struct{}
	done     chan struct{}
}

// NewAgent registers and starts the agent for cache i. Stop it with Stop.
func NewAgent(i topology.CacheIndex, prober *probe.Prober, transport Transport) (*Agent, error) {
	if prober == nil {
		return nil, errors.New("protocol: nil prober")
	}
	if transport == nil {
		return nil, errors.New("protocol: nil transport")
	}
	a := &Agent{
		addr:      CacheAddr(i),
		prober:    prober,
		transport: transport,
		inbox:     transport.Register(CacheAddr(i)),
		group:     -1,
		responses: make(map[uint64]Message),
		stopped:   make(chan struct{}),
		done:      make(chan struct{}),
	}
	go a.loop()
	return a, nil
}

// Addr returns the agent's address.
func (a *Agent) Addr() Addr { return a.addr }

// Group returns the agent's assigned group (-1 before assignment) and the
// group's member list.
func (a *Agent) Group() (int, []topology.CacheIndex) {
	a.mu.Lock()
	defer a.mu.Unlock()
	members := make([]topology.CacheIndex, len(a.members))
	copy(members, a.members)
	return a.group, members
}

// Stats returns a snapshot of the agent's work counters.
func (a *Agent) Stats() AgentStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Stop signals the agent to exit and waits for it.
func (a *Agent) Stop() {
	a.stopOnce.Do(func() { close(a.stopped) })
	<-a.done
}

// loop is the agent's actor body.
func (a *Agent) loop() {
	defer close(a.done)
	for {
		select {
		case <-a.stopped:
			return
		case msg, ok := <-a.inbox:
			if !ok {
				return
			}
			a.handle(msg)
		}
	}
}

func (a *Agent) handle(msg Message) {
	// Duplicate request: re-send the cached response. This also covers a
	// retransmission whose original reply was lost in flight.
	a.mu.Lock()
	if cached, ok := a.responses[msg.Seq]; ok && cached.Kind == expectedReply(msg.Kind) {
		switch msg.Kind {
		case MsgProbeRequest:
			a.stats.DupProbeRequests++
		case MsgAssign:
			a.stats.DupAssigns++
		}
		a.mu.Unlock()
		//ecglint:allow errdrop duplicate-reply delivery is fire-and-forget; the coordinator retries on timeout and counts losses
		_ = a.transport.Send(cached)
		return
	}
	a.mu.Unlock()

	switch msg.Kind {
	case MsgProbeRequest:
		rtts := make([]float64, len(msg.Targets))
		for i, tgt := range msg.Targets {
			v, err := a.prober.Measure(probe.Cache(a.addr.Cache()), tgt)
			if err != nil {
				// A failed measurement is reported as a negative sentinel;
				// the coordinator treats it as missing.
				v = -1
			}
			rtts[i] = v
		}
		reply := Message{
			Kind: MsgProbeReply,
			From: a.addr,
			To:   msg.From,
			Seq:  msg.Seq,
			RTTs: rtts,
		}
		a.mu.Lock()
		a.stats.ProbeRequests++
		a.responses[msg.Seq] = reply
		a.mu.Unlock()
		// Reply delivery failures are the coordinator's problem (it
		// retries); the agent stays fire-and-forget.
		//ecglint:allow errdrop reply delivery is fire-and-forget; the coordinator retries on timeout
		_ = a.transport.Send(reply)
	case MsgAssign:
		ack := Message{
			Kind:  MsgAssignAck,
			From:  a.addr,
			To:    msg.From,
			Seq:   msg.Seq,
			Group: msg.Group,
		}
		a.mu.Lock()
		a.group = msg.Group
		a.members = append([]topology.CacheIndex(nil), msg.Members...)
		a.stats.Assigns++
		a.responses[msg.Seq] = ack
		a.mu.Unlock()
		//ecglint:allow errdrop ack delivery is fire-and-forget; the coordinator retries the assign on timeout
		_ = a.transport.Send(ack)
	}
}

// expectedReply maps a request kind to the response kind cached for it.
func expectedReply(k MsgKind) MsgKind {
	switch k {
	case MsgProbeRequest:
		return MsgProbeReply
	case MsgAssign:
		return MsgAssignAck
	default:
		return 0
	}
}
