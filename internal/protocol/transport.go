package protocol

import (
	"errors"
	"fmt"
	"sync"

	"edgecachegroups/internal/obs"
	"edgecachegroups/internal/simrand"
)

// Transport delivers messages between protocol participants.
// Implementations must be safe for concurrent use.
type Transport interface {
	// Send delivers msg to msg.To's mailbox. A Send to an unregistered
	// address errors; a dropped (lossy) message does NOT error — loss is
	// silent, as on a real network.
	Send(msg Message) error
	// Register creates (or returns) the mailbox channel for addr.
	Register(addr Addr) <-chan Message
	// Close shuts the transport down; subsequent Sends fail.
	Close()
}

// ErrTransportClosed is returned by Send after Close.
var ErrTransportClosed = errors.New("protocol: transport closed")

// FaultConfig describes the deterministic fault model of a ChanTransport.
// The zero value injects no faults. Every probabilistic knob draws from a
// per-link child stream of the transport's random source, so the fate of a
// message is a pure function of (seed, link, position in the link's send
// sequence) — independent of how concurrent senders on other links
// interleave. Runs with the same seed therefore replay bit-identically.
type FaultConfig struct {
	// Loss is the default per-message drop probability in [0,1), applied
	// independently on every link.
	Loss float64
	// LinkLoss overrides Loss for specific directed links, so tests can
	// model one flaky path (e.g. coordinator -> cache-7) without
	// perturbing the rest of the network.
	LinkLoss map[Link]float64
	// DupProb is the probability in [0,1) that a delivered message is
	// duplicated (both copies then pass independently through the delay
	// stage).
	DupProb float64
	// DelayProb is the probability in [0,1) that a message is delayed and
	// reordered: a delayed message is held back and delivered only after
	// 1..MaxDelay subsequent sends on the same link, so it arrives behind
	// messages sent after it. Delay is measured in link messages, not
	// wall-clock time — a virtual-time queue that keeps runs reproducible.
	DelayProb float64
	// MaxDelay bounds the reordering window in subsequent link sends.
	// Zero means the default (4) when DelayProb > 0.
	MaxDelay int
}

// Validate reports whether the fault model is usable.
func (fc FaultConfig) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{{"Loss", fc.Loss}, {"DupProb", fc.DupProb}, {"DelayProb", fc.DelayProb}}
	for _, p := range probs {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("protocol: %s must be in [0,1), got %v", p.name, p.v)
		}
	}
	for link, v := range fc.LinkLoss {
		if v < 0 || v >= 1 {
			return fmt.Errorf("protocol: LinkLoss[%v] must be in [0,1), got %v", link, v)
		}
	}
	if fc.MaxDelay < 0 {
		return fmt.Errorf("protocol: MaxDelay must be >= 0, got %d", fc.MaxDelay)
	}
	return nil
}

func (fc FaultConfig) withDefaults() FaultConfig {
	if fc.DelayProb > 0 && fc.MaxDelay == 0 {
		fc.MaxDelay = 4
	}
	return fc
}

// TransportStats counts what the fault model did to the traffic. All
// counters are monotone; Delivered + the Dropped* counters account for
// every copy the transport decided on (duplication mints extra copies).
type TransportStats struct {
	// Sent counts Send calls that found an open transport and a mailbox.
	Sent int64
	// Delivered counts copies placed into a mailbox.
	Delivered int64
	// Duplicated counts messages the duplication stage copied.
	Duplicated int64
	// Delayed counts copies held back for reordering.
	Delayed int64
	// DroppedLoss / DroppedDead / DroppedPartition / DroppedOverflow /
	// DroppedClosed count copies removed by each failure mode (loss draw,
	// crashed destination, partition cut, full mailbox, transport close
	// with copies still held).
	DroppedLoss      int64
	DroppedDead      int64
	DroppedPartition int64
	DroppedOverflow  int64
	DroppedClosed    int64
}

// heldMessage is a delayed copy waiting for `after` further sends on its
// link before delivery.
type heldMessage struct {
	msg   Message
	after int
}

// linkState is the per-directed-link fault state.
type linkState struct {
	src  *simrand.Source
	held []heldMessage
}

// ChanTransport is an in-process Transport built on buffered channels,
// with a deterministic fault model for failure-injection tests: per-link
// message loss, duplication, bounded delay with reordering, network
// partitions, and node crash/restart. See FaultConfig for the determinism
// contract. The zero-fault configuration is a plain reliable transport.
type ChanTransport struct {
	mu     sync.Mutex
	boxes  map[Addr]chan Message
	closed bool

	faults FaultConfig
	src    *simrand.Source // nil disables all probabilistic faults
	links  map[Link]*linkState

	// dead addresses silently swallow all traffic (crashed nodes);
	// killAfter schedules a crash after N further deliveries to the node,
	// so mid-round crashes land at deterministic protocol positions.
	dead      map[Addr]bool
	killAfter map[Addr]int

	// isolated addresses are cut from the rest of the network (but can
	// still reach each other) while a partition is active.
	isolated map[Addr]bool

	stats TransportStats
}

var _ Transport = (*ChanTransport)(nil)

// NewChanTransport builds an in-process transport with uniform message
// loss only — the pre-fault-model constructor, kept for callers that need
// nothing beyond loss. lossProb in [0,1) drops each message independently
// using src (nil src means no loss regardless of lossProb).
func NewChanTransport(lossProb float64, src *simrand.Source) (*ChanTransport, error) {
	return NewFaultTransport(FaultConfig{Loss: lossProb}, src)
}

// NewFaultTransport builds an in-process transport with the full
// deterministic fault model. A nil src disables every probabilistic fault
// (loss, duplication, delay) regardless of the configured probabilities;
// partitions and crashes still apply.
func NewFaultTransport(fc FaultConfig, src *simrand.Source) (*ChanTransport, error) {
	if err := fc.Validate(); err != nil {
		return nil, err
	}
	return &ChanTransport{
		boxes:     make(map[Addr]chan Message),
		faults:    fc.withDefaults(),
		src:       src,
		links:     make(map[Link]*linkState),
		dead:      make(map[Addr]bool),
		killAfter: make(map[Addr]int),
		isolated:  make(map[Addr]bool),
	}, nil
}

// mailboxDepth bounds each participant's queue. The protocol's fan-out is
// one outstanding request per peer, so a small constant suffices; a full
// mailbox drops the message (backpressure as loss).
const mailboxDepth = 64

// Register implements Transport.
func (t *ChanTransport) Register(addr Addr) <-chan Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	if box, ok := t.boxes[addr]; ok {
		return box
	}
	box := make(chan Message, mailboxDepth)
	t.boxes[addr] = box
	return box
}

// Kill marks addr as crashed: all traffic to it is silently dropped.
func (t *ChanTransport) Kill(addr Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dead[addr] = true
	delete(t.killAfter, addr)
}

// KillAfter schedules addr to crash after n more deliveries reach it.
// Deliveries to one address come from a single sequential sender in this
// protocol, so the crash lands at the same protocol position on every
// run. n <= 0 crashes immediately.
func (t *ChanTransport) KillAfter(addr Addr, n int) {
	if n <= 0 {
		t.Kill(addr)
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.dead[addr] {
		t.killAfter[addr] = n
	}
}

// Restart revives a crashed addr: traffic flows to it again. The node's
// mailbox is left as it was — messages that arrived before the crash are
// treated as received.
func (t *ChanTransport) Restart(addr Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.dead, addr)
}

// Partition cuts the listed addresses off from the rest of the network:
// messages between an isolated and a non-isolated participant are
// dropped, while traffic within either side still flows. A new call
// replaces the previous partition.
func (t *ChanTransport) Partition(isolated ...Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.isolated = make(map[Addr]bool, len(isolated))
	for _, a := range isolated {
		t.isolated[a] = true
	}
}

// Heal removes the partition.
func (t *ChanTransport) Heal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.isolated = make(map[Addr]bool)
}

// Stats returns a snapshot of the fault-model counters.
func (t *ChanTransport) Stats() TransportStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// PublishObs mirrors the transport's cumulative delivery statistics into
// o's registry as transport_* gauges. The counters are monotone totals,
// so republishing after later runs just advances the gauges; a nil *Obs
// no-ops.
func (t *ChanTransport) PublishObs(o *obs.Obs) {
	if o == nil {
		return
	}
	st := t.Stats()
	o.Gauge("transport_sent").Set(float64(st.Sent))
	o.Gauge("transport_delivered").Set(float64(st.Delivered))
	o.Gauge("transport_duplicated").Set(float64(st.Duplicated))
	o.Gauge("transport_delayed").Set(float64(st.Delayed))
	o.Gauge("transport_dropped_loss").Set(float64(st.DroppedLoss))
	o.Gauge("transport_dropped_dead").Set(float64(st.DroppedDead))
	o.Gauge("transport_dropped_partition").Set(float64(st.DroppedPartition))
	o.Gauge("transport_dropped_overflow").Set(float64(st.DroppedOverflow))
	o.Gauge("transport_dropped_closed").Set(float64(st.DroppedClosed))
}

// link returns (creating on first use) the fault state of one directed
// link. The link's stream is split off the root source by the link label,
// a pure function of (seed, link) — creation order does not matter.
func (t *ChanTransport) link(from, to Addr) *linkState {
	key := Link{From: from, To: to}
	ls, ok := t.links[key]
	if !ok {
		ls = &linkState{}
		if t.src != nil {
			ls.src = t.src.Split("link/" + key.String())
		}
		t.links[key] = ls
	}
	return ls
}

// Send implements Transport. The entire decision-and-delivery path runs
// under the transport mutex: mailbox sends are non-blocking, so holding
// the lock is cheap, and it means Close can never close a channel between
// a Send's closed-check and its channel send (the old unsynchronized
// `box <- msg` after unlock could panic against a concurrent Close).
func (t *ChanTransport) Send(msg Message) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrTransportClosed
	}
	if _, ok := t.boxes[msg.To]; !ok && !t.dead[msg.To] {
		return fmt.Errorf("protocol: no mailbox for %v", msg.To)
	}
	t.stats.Sent++
	if t.dead[msg.To] {
		t.stats.DroppedDead++
		return nil // crashed node: message vanishes
	}
	if t.isolated[msg.From] != t.isolated[msg.To] {
		t.stats.DroppedPartition++
		return nil
	}

	ls := t.link(msg.From, msg.To)

	// Fault-process the new message first, then release held copies whose
	// reordering window ended with this send — so a released copy arrives
	// AFTER the newer message, which is what reordering means. Copies held
	// by this very send start aging at the next one.
	var newHolds []heldMessage
	if lost := ls.src != nil && ls.src.Bernoulli(t.lossProbLocked(msg)); lost {
		t.stats.DroppedLoss++
	} else {
		copies := 1
		if ls.src != nil && ls.src.Bernoulli(t.faults.DupProb) {
			copies = 2
			t.stats.Duplicated++
		}
		for c := 0; c < copies; c++ {
			if ls.src != nil && ls.src.Bernoulli(t.faults.DelayProb) {
				t.stats.Delayed++
				newHolds = append(newHolds, heldMessage{msg: msg, after: 1 + ls.src.Intn(t.faults.MaxDelay)})
				continue
			}
			t.deliverLocked(msg)
		}
	}

	if len(ls.held) > 0 {
		kept := ls.held[:0]
		for _, h := range ls.held {
			h.after--
			if h.after <= 0 {
				t.deliverLocked(h.msg)
				continue
			}
			kept = append(kept, h)
		}
		ls.held = kept
	}
	ls.held = append(ls.held, newHolds...)
	return nil
}

// lossProbLocked resolves the loss probability for msg's link.
func (t *ChanTransport) lossProbLocked(msg Message) float64 {
	if p, ok := t.faults.LinkLoss[Link{From: msg.From, To: msg.To}]; ok {
		return p
	}
	return t.faults.Loss
}

// deliverLocked places one copy into its destination mailbox, honouring
// crash state and the KillAfter schedule. Callers hold t.mu.
func (t *ChanTransport) deliverLocked(msg Message) {
	if t.dead[msg.To] {
		t.stats.DroppedDead++
		return
	}
	box := t.boxes[msg.To]
	select {
	case box <- msg:
		t.stats.Delivered++
		if n, ok := t.killAfter[msg.To]; ok {
			n--
			if n <= 0 {
				t.dead[msg.To] = true
				delete(t.killAfter, msg.To)
			} else {
				t.killAfter[msg.To] = n
			}
		}
	default:
		// Mailbox overflow behaves as network loss.
		t.stats.DroppedOverflow++
	}
}

// Close implements Transport. Copies still held in delay queues are
// dropped, as in-flight packets are when a network goes away.
func (t *ChanTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for _, ls := range t.links {
		t.stats.DroppedClosed += int64(len(ls.held))
		ls.held = nil
	}
	for _, box := range t.boxes {
		//ecglint:allow lockedsend sound because every send also runs under t.mu with non-blocking delivery; closing under the lock is what prevents the Send/Close panic
		close(box)
	}
}
