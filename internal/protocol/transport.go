package protocol

import (
	"errors"
	"fmt"
	"sync"

	"edgecachegroups/internal/simrand"
)

// Transport delivers messages between protocol participants.
// Implementations must be safe for concurrent use.
type Transport interface {
	// Send delivers msg to msg.To's mailbox. A Send to an unregistered
	// address errors; a dropped (lossy) message does NOT error — loss is
	// silent, as on a real network.
	Send(msg Message) error
	// Register creates (or returns) the mailbox channel for addr.
	Register(addr Addr) <-chan Message
	// Close shuts the transport down; subsequent Sends fail.
	Close()
}

// ErrTransportClosed is returned by Send after Close.
var ErrTransportClosed = errors.New("protocol: transport closed")

// ChanTransport is an in-process Transport built on buffered channels,
// with optional deterministic message loss for failure-injection tests.
type ChanTransport struct {
	mu     sync.Mutex
	boxes  map[Addr]chan Message
	closed bool

	lossProb float64
	lossSrc  *simrand.Source

	// deadAddrs silently swallow all traffic (crashed nodes).
	dead map[Addr]bool
}

var _ Transport = (*ChanTransport)(nil)

// NewChanTransport builds an in-process transport. lossProb in [0,1) drops
// each message independently using src (nil src means no loss regardless
// of lossProb).
func NewChanTransport(lossProb float64, src *simrand.Source) (*ChanTransport, error) {
	if lossProb < 0 || lossProb >= 1 {
		return nil, fmt.Errorf("protocol: lossProb must be in [0,1), got %v", lossProb)
	}
	return &ChanTransport{
		boxes:    make(map[Addr]chan Message),
		lossProb: lossProb,
		lossSrc:  src,
		dead:     make(map[Addr]bool),
	}, nil
}

// mailboxDepth bounds each participant's queue. The protocol's fan-out is
// one outstanding request per peer, so a small constant suffices; a full
// mailbox drops the message (backpressure as loss).
const mailboxDepth = 64

// Register implements Transport.
func (t *ChanTransport) Register(addr Addr) <-chan Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	if box, ok := t.boxes[addr]; ok {
		return box
	}
	box := make(chan Message, mailboxDepth)
	t.boxes[addr] = box
	return box
}

// Kill marks addr as crashed: all traffic to it is silently dropped.
func (t *ChanTransport) Kill(addr Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dead[addr] = true
}

// Send implements Transport.
func (t *ChanTransport) Send(msg Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTransportClosed
	}
	if t.dead[msg.To] {
		t.mu.Unlock()
		return nil // crashed node: message vanishes
	}
	box, ok := t.boxes[msg.To]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("protocol: no mailbox for %v", msg.To)
	}
	drop := false
	if t.lossSrc != nil && t.lossProb > 0 {
		drop = t.lossSrc.Float64() < t.lossProb
	}
	t.mu.Unlock()
	if drop {
		return nil
	}
	select {
	case box <- msg:
	default:
		// Mailbox overflow behaves as network loss.
	}
	return nil
}

// Close implements Transport.
func (t *ChanTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for _, box := range t.boxes {
		close(box)
	}
}
