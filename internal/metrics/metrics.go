// Package metrics implements the paper's two evaluation metrics — the
// average group interaction cost (§2) and the average edge cache latency
// (§4) — plus general latency aggregation utilities.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"edgecachegroups/internal/topology"
)

// GroupInteractionCost returns GICost(group): the mean true RTT over all
// unordered pairs of caches in the group. Groups with fewer than two
// members have no pairs and cost 0.
func GroupInteractionCost(nw *topology.Network, members []topology.CacheIndex) float64 {
	n := len(members)
	if n < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += nw.Dist(members[i], members[j])
		}
	}
	return sum / float64(n*(n-1)/2)
}

// AvgGroupInteractionCost returns the mean of GroupInteractionCost over all
// non-empty groups — the paper's clustering-accuracy metric.
func AvgGroupInteractionCost(nw *topology.Network, groups [][]topology.CacheIndex) float64 {
	var sum float64
	var count int
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		sum += GroupInteractionCost(nw, g)
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// LatencyStats accumulates latency samples (milliseconds) and reports
// summary statistics. The zero value is ready to use.
//
// samples always stays in insertion order: Percentile and String rank on
// a separate sorted scratch copy. This is a determinism requirement, not
// a style choice — Merge replays samples in their stored order, so a
// read-only query that reordered them would change the float-addition
// order (and therefore the low bits of Sum) of every later Merge.
type LatencyStats struct {
	samples []float64
	scratch []float64 // lazily sorted copy of samples, invalidated by Add
	sum     float64
	min     float64
	max     float64
	sorted  bool
}

// Add records one sample. Negative samples are ignored (they indicate
// accounting bugs upstream and must not corrupt aggregates).
func (s *LatencyStats) Add(ms float64) {
	if ms < 0 || math.IsNaN(ms) || math.IsInf(ms, 0) {
		return
	}
	if len(s.samples) == 0 || ms < s.min {
		s.min = ms
	}
	if len(s.samples) == 0 || ms > s.max {
		s.max = ms
	}
	s.samples = append(s.samples, ms)
	s.sum += ms
	s.sorted = false
}

// Merge folds other's samples into s.
func (s *LatencyStats) Merge(other *LatencyStats) {
	for _, v := range other.samples {
		s.Add(v)
	}
}

// Count returns the number of samples.
func (s *LatencyStats) Count() int { return len(s.samples) }

// Sum returns the exact running total of all samples, for conservation
// checks and bit-stable digests (Mean()*Count() would reintroduce rounding).
func (s *LatencyStats) Sum() float64 { return s.sum }

// Mean returns the average sample, or 0 with no samples.
func (s *LatencyStats) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Min returns the smallest sample, or 0 with no samples.
func (s *LatencyStats) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s *LatencyStats) Max() float64 { return s.max }

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank on the sorted samples. It returns 0 with no samples.
func (s *LatencyStats) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return s.min
	}
	if p >= 100 {
		return s.max
	}
	if !s.sorted {
		s.scratch = append(s.scratch[:0], s.samples...)
		sort.Float64s(s.scratch)
		s.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return s.scratch[rank-1]
}

// String implements fmt.Stringer with a compact summary.
func (s *LatencyStats) String() string {
	return fmt.Sprintf("n=%d mean=%.2fms p50=%.2fms p95=%.2fms max=%.2fms",
		s.Count(), s.Mean(), s.Percentile(50), s.Percentile(95), s.Max())
}
