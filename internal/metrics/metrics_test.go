package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"edgecachegroups/internal/topology"
)

// lineNetwork builds o -1- c0 -1- c1 -1- c2 so Dist(ci,cj) = |i-j|.
func lineNetwork(t *testing.T) *topology.Network {
	t.Helper()
	g := topology.NewGraph()
	o := g.AddNode(topology.KindStub, 0)
	prev := o
	var caches []topology.NodeID
	for i := 0; i < 3; i++ {
		n := g.AddNode(topology.KindStub, 0)
		if err := g.AddEdge(prev, n, 1); err != nil {
			t.Fatal(err)
		}
		caches = append(caches, n)
		prev = n
	}
	nw, err := topology.NewNetworkAt(g, o, caches)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestGroupInteractionCost(t *testing.T) {
	nw := lineNetwork(t)
	tests := []struct {
		name    string
		members []topology.CacheIndex
		want    float64
	}{
		{name: "empty", members: nil, want: 0},
		{name: "singleton", members: []topology.CacheIndex{1}, want: 0},
		{name: "pair", members: []topology.CacheIndex{0, 1}, want: 1},
		{name: "far pair", members: []topology.CacheIndex{0, 2}, want: 2},
		// pairs (0,1)=1, (0,2)=2, (1,2)=1 -> mean 4/3
		{name: "triple", members: []topology.CacheIndex{0, 1, 2}, want: 4.0 / 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := GroupInteractionCost(nw, tt.members)
			if math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("GICost = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAvgGroupInteractionCost(t *testing.T) {
	nw := lineNetwork(t)
	groups := [][]topology.CacheIndex{
		{0, 1},    // cost 1
		{2},       // singleton: cost 0, counted
		nil,       // empty: skipped
		{0, 1, 2}, // cost 4/3
	}
	got := AvgGroupInteractionCost(nw, groups)
	want := (1 + 0 + 4.0/3) / 3
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("AvgGICost = %v, want %v", got, want)
	}
	if AvgGroupInteractionCost(nw, nil) != 0 {
		t.Fatal("no groups should cost 0")
	}
}

func TestLatencyStatsBasics(t *testing.T) {
	var s LatencyStats
	if s.Count() != 0 || s.Mean() != 0 || s.Percentile(50) != 0 {
		t.Fatal("zero-value stats not zeroed")
	}
	for _, v := range []float64{10, 20, 30, 40} {
		s.Add(v)
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Mean() != 25 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 10 || s.Max() != 40 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 20 {
		t.Fatalf("P50 = %v, want 20", got)
	}
	if got := s.Percentile(100); got != 40 {
		t.Fatalf("P100 = %v, want 40", got)
	}
	if got := s.Percentile(0); got != 10 {
		t.Fatalf("P0 = %v, want 10", got)
	}
}

func TestLatencyStatsIgnoresInvalid(t *testing.T) {
	var s LatencyStats
	s.Add(-5)
	s.Add(math.NaN())
	s.Add(math.Inf(1))
	if s.Count() != 0 {
		t.Fatalf("invalid samples recorded: count=%d", s.Count())
	}
}

func TestLatencyStatsAddAfterPercentile(t *testing.T) {
	var s LatencyStats
	s.Add(30)
	s.Add(10)
	_ = s.Percentile(50) // forces sort
	s.Add(20)
	if got := s.Percentile(50); got != 20 {
		t.Fatalf("P50 after re-add = %v, want 20", got)
	}
}

func TestLatencyStatsMerge(t *testing.T) {
	var a, b LatencyStats
	a.Add(1)
	a.Add(3)
	b.Add(5)
	a.Merge(&b)
	if a.Count() != 3 || a.Mean() != 3 {
		t.Fatalf("merged: count=%d mean=%v", a.Count(), a.Mean())
	}
}

// TestLatencyStatsMergeOrderStability is the regression test for a
// determinism bug: Percentile used to sort samples in place, so querying
// a stats object reordered its sample log and changed the float-addition
// order — and therefore the low bits of Sum — of every subsequent Merge
// out of it. The sample set {1e16, 1, 1} makes the two orders bitwise
// distinguishable: 1e16+1+1 == 1e16 while 1+1+1e16 == 1e16+2.
func TestLatencyStatsMergeOrderStability(t *testing.T) {
	samples := []float64{1e16, 1, 1}
	build := func() *LatencyStats {
		var s LatencyStats
		for _, v := range samples {
			s.Add(v)
		}
		return &s
	}

	pristine := build()
	var want LatencyStats
	want.Merge(pristine)

	queried := build()
	_ = queried.Percentile(50) // read-only query must not reorder samples
	_ = queried.String()
	var got LatencyStats
	got.Merge(queried)

	if math.Float64bits(got.Sum()) != math.Float64bits(want.Sum()) {
		t.Fatalf("Percentile query changed merge order: sum %v (%016x) != %v (%016x)",
			got.Sum(), math.Float64bits(got.Sum()), want.Sum(), math.Float64bits(want.Sum()))
	}
	if got.Count() != want.Count() {
		t.Fatalf("merged counts differ: %d != %d", got.Count(), want.Count())
	}
	// The query results themselves must stay correct afterwards.
	if p := queried.Percentile(50); p != 1 {
		t.Fatalf("P50 after merge = %v, want 1", p)
	}
}

func TestLatencyStatsString(t *testing.T) {
	var s LatencyStats
	s.Add(10)
	out := s.String()
	if !strings.Contains(out, "n=1") || !strings.Contains(out, "mean=10.00ms") {
		t.Fatalf("String() = %q", out)
	}
}

func TestLatencyStatsPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var s LatencyStats
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Bound magnitudes so the sum cannot overflow.
			s.Add(math.Abs(math.Mod(v, 1e6)))
		}
		if s.Count() == 0 {
			return true
		}
		prev := s.Percentile(0)
		for p := 5.0; p <= 100; p += 5 {
			cur := s.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return s.Min() <= s.Mean() && s.Mean() <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
