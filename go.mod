module edgecachegroups

go 1.22
