// Latency sweep: the group-size trade-off that motivates the SDSL scheme.
//
// The program sweeps the average cooperative group size on a fixed network
// (the paper's Figure 3 experiment at reduced scale) and draws ASCII curves
// of the average edge-cache latency for the whole network, the caches
// nearest the origin, and the caches farthest from it. The three curves are
// U-shaped with minima at different group sizes — the observation that
// motivates server-distance-sensitive group formation.
//
//	go run ./examples/latencysweep
package main

import (
	"fmt"
	"log"

	ecg "edgecachegroups"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	opts := ecg.ExperimentOptions{Seed: 5, Scale: 0.3, Parallelism: 4, Trials: 1}
	fmt.Println("sweeping group sizes (scaled-down Figure 3; ~150 caches)...")
	res, err := ecg.Fig3(opts)
	if err != nil {
		return fmt.Errorf("run sweep: %w", err)
	}

	fmt.Printf("\n%-12s %-6s %12s %12s %12s\n", "group size", "K", "all (ms)", "near (ms)", "far (ms)")
	for _, p := range res.Points {
		fmt.Printf("%-12d %-6d %12.1f %12.1f %12.1f\n", p.GroupSize, p.K, p.AllMS, p.NearMS, p.FarMS)
	}

	// ASCII curves, one per series.
	series := []struct {
		name string
		get  func(i int) float64
	}{
		{"all caches", func(i int) float64 { return res.Points[i].AllMS }},
		{fmt.Sprintf("%d nearest", res.SubsetSize), func(i int) float64 { return res.Points[i].NearMS }},
		{fmt.Sprintf("%d farthest", res.SubsetSize), func(i int) float64 { return res.Points[i].FarMS }},
	}
	for _, s := range series {
		var lo, hi float64
		for i := range res.Points {
			v := s.get(i)
			if i == 0 || v < lo {
				lo = v
			}
			if i == 0 || v > hi {
				hi = v
			}
		}
		fmt.Printf("\n%s latency vs group size (min %.1fms, max %.1fms):\n", s.name, lo, hi)
		for i, p := range res.Points {
			v := s.get(i)
			bars := 0
			if hi > lo {
				bars = int(50 * (v - lo) / (hi - lo))
			}
			marker := ""
			if v == lo {
				marker = "  <- minimum"
			}
			fmt.Printf("  size %4d |%-50s| %7.1fms%s\n", p.GroupSize, bar(bars), v, marker)
		}
	}

	fmt.Println("\nThe nearest caches bottom out at a smaller group size than the")
	fmt.Println("farthest caches: one global K cannot be optimal for both, which is")
	fmt.Println("why the SDSL scheme varies group size with distance to the origin.")
	return nil
}

func bar(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
