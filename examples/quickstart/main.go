// Quickstart: form cooperative edge cache groups with the SL scheme.
//
// This is the smallest end-to-end use of the library: generate an Internet
// topology, place an edge cache network on it, probe landmarks, and
// partition the caches into cooperative groups.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ecg "edgecachegroups"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src := ecg.NewRand(7)

	// 1. The Internet substrate: a transit-stub topology (GT-ITM style).
	graph, err := ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topology"))
	if err != nil {
		return fmt.Errorf("generate topology: %w", err)
	}

	// 2. The edge cache network: one origin server and 100 caches placed on
	// random stub routers.
	nw, err := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: 100}, src.Split("placement"))
	if err != nil {
		return fmt.Errorf("place network: %w", err)
	}

	// 3. The measurement layer: RTT probing with realistic noise.
	prober, err := ecg.NewProber(nw, ecg.DefaultProbeConfig(), src.Split("probe"))
	if err != nil {
		return fmt.Errorf("build prober: %w", err)
	}

	// 4. Group formation: the SL scheme with 10 landmarks (origin + 9
	// caches, chosen greedily from a PLSet of 4x9 candidates).
	gf, err := ecg.NewCoordinator(nw, prober, ecg.SL(10, 4), src.Split("coordinator"))
	if err != nil {
		return fmt.Errorf("build coordinator: %w", err)
	}
	plan, err := gf.FormGroups(10)
	if err != nil {
		return fmt.Errorf("form groups: %w", err)
	}

	fmt.Printf("formed %d cooperative groups over %d caches (%s scheme)\n",
		plan.NumGroups(), plan.NumCaches(), plan.Scheme)
	fmt.Printf("k-means converged after %d iterations\n", plan.Iterations)
	fmt.Printf("avg group interaction cost: %.1f ms\n\n",
		ecg.AvgGroupInteractionCost(nw, plan.Groups()))

	for g, members := range plan.Groups() {
		cost := ecg.GroupInteractionCost(nw, members)
		fmt.Printf("group %2d: %2d caches, interaction cost %6.1f ms, members %v\n",
			g, len(members), cost, members)
	}
	return nil
}
