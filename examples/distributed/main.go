// Distributed group formation: the GF-coordinator protocol in action.
//
// Instead of calling the library's in-process pipeline, this program runs
// the paper's coordination as an actual message-passing protocol: every
// cache is a goroutine agent with a mailbox; the coordinator drives the
// PLSet probing round, the feature round, and the assignment broadcast
// over a lossy transport, with retries and timeouts. A handful of agents
// are crashed up front to show the protocol degrading gracefully.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	ecg "edgecachegroups"
)

const (
	numCaches = 120
	numGroups = 12
	msgLoss   = 0.10 // 10% of protocol messages vanish
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src := ecg.NewRand(55)

	graph, err := ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topology"))
	if err != nil {
		return fmt.Errorf("generate topology: %w", err)
	}
	nw, err := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: numCaches}, src.Split("placement"))
	if err != nil {
		return fmt.Errorf("place network: %w", err)
	}
	prober, err := ecg.NewProber(nw, ecg.DefaultProbeConfig(), src.Split("probe"))
	if err != nil {
		return fmt.Errorf("build prober: %w", err)
	}

	// Lossy transport + agents.
	transport, err := ecg.NewChanTransport(msgLoss, src.Split("loss"))
	if err != nil {
		return fmt.Errorf("build transport: %w", err)
	}
	defer transport.Close()
	agents := make([]*ecg.ProtocolAgent, numCaches)
	for i := range agents {
		a, err := ecg.NewProtocolAgent(ecg.CacheIndex(i), prober, transport)
		if err != nil {
			return fmt.Errorf("start agent %d: %w", i, err)
		}
		agents[i] = a
	}
	defer func() {
		for _, a := range agents {
			a.Stop()
		}
	}()

	// Crash a few caches before the protocol starts.
	crashed := []ecg.CacheIndex{7, 42, 99}
	for _, ci := range crashed {
		transport.Kill(ecg.ProtocolCacheAddr(ci))
	}
	fmt.Printf("network: %d caches (%d crashed), %.0f%% message loss\n",
		numCaches, len(crashed), msgLoss*100)

	cfg := ecg.ProtocolConfig{
		L:            10,
		M:            4,
		K:            numGroups,
		Theta:        1,
		ReplyTimeout: 150 * time.Millisecond,
		Retries:      5,
	}
	coord, err := ecg.NewProtocolCoordinator(cfg, numCaches, transport, src.Split("coordinator"))
	if err != nil {
		return fmt.Errorf("build coordinator: %w", err)
	}

	start := time.Now()
	res, err := coord.Run()
	if err != nil {
		return fmt.Errorf("protocol run: %w", err)
	}
	fmt.Printf("protocol completed in %.0fms, %d messages sent\n",
		time.Since(start).Seconds()*1000, res.MessagesSent)
	fmt.Printf("landmarks: %v\n", res.Landmarks)
	fmt.Printf("assigned:  %d caches into %d groups\n", len(res.Assignments), len(res.Groups))
	fmt.Printf("unresponsive (crashed or unlucky): %v\n", res.Unresponsive)
	if len(res.UnackedAssignments) > 0 {
		fmt.Printf("assignments sent but never acked: %v\n", res.UnackedAssignments)
	}

	// Quality check against the true topology.
	cost := ecg.AvgGroupInteractionCost(nw, res.Groups)
	fmt.Printf("avg group interaction cost: %.1f ms (network-wide mean pair RTT %.1f ms)\n",
		cost, nw.MeanPairwiseDist())

	// Show a few groups.
	sizes := make([]int, len(res.Groups))
	for g, members := range res.Groups {
		sizes[g] = len(members)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	fmt.Printf("group sizes (desc): %v\n", sizes)

	// Agents know their assignments.
	applied := 0
	for i, a := range agents {
		g, _ := a.Group()
		if want, ok := res.Assignments[ecg.CacheIndex(i)]; ok && g == want {
			applied++
		}
	}
	fmt.Printf("agents with applied assignment: %d/%d\n", applied, len(res.Assignments))
	return nil
}
