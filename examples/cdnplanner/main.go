// CDN planner: compare SL and SDSL group plans for a flash-event site.
//
// This is the scenario that motivates the paper: a CDN serving a
// high-traffic event site (the paper's trace is the 2000 Sydney Olympics
// web site) must partition hundreds of edge caches into cooperative groups.
// The planner forms groups with both schemes, replays the same synthetic
// event workload through the simulator, and reports which plan serves
// clients faster — overall and broken down by distance from the origin.
//
//	go run ./examples/cdnplanner
package main

import (
	"fmt"
	"log"

	ecg "edgecachegroups"
)

const (
	numCaches = 200
	numGroups = 20
	landmarks = 15
	plsetM    = 4
	theta     = 1.0
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src := ecg.NewRand(21)

	graph, err := ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topology"))
	if err != nil {
		return fmt.Errorf("generate topology: %w", err)
	}
	nw, err := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: numCaches}, src.Split("placement"))
	if err != nil {
		return fmt.Errorf("place network: %w", err)
	}
	prober, err := ecg.NewProber(nw, ecg.DefaultProbeConfig(), src.Split("probe"))
	if err != nil {
		return fmt.Errorf("build prober: %w", err)
	}

	// Event workload: highly similar request patterns across caches (every
	// region hammers the same hot event pages) with dynamic content (scores
	// and articles update continuously at the origin).
	catParams := ecg.DefaultCatalogParams()
	catParams.DynamicFraction = 0.5 // event content updates aggressively
	catalog, err := ecg.NewCatalog(catParams, src.Split("catalog"))
	if err != nil {
		return fmt.Errorf("build catalog: %w", err)
	}
	traceParams := ecg.TraceParams{DurationSec: 300, RequestRatePerCache: 1, Similarity: 0.9}
	requests, err := ecg.GenerateRequests(catalog, numCaches, traceParams, src.Split("requests"))
	if err != nil {
		return fmt.Errorf("generate requests: %w", err)
	}
	updates, err := ecg.GenerateUpdates(catalog, traceParams.DurationSec, src.Split("updates"))
	if err != nil {
		return fmt.Errorf("generate updates: %w", err)
	}

	near := nw.NearestCaches(numCaches / 10)
	far := nw.FarthestCaches(numCaches / 10)

	fmt.Printf("CDN plan comparison: %d caches, %d groups, %d requests, %d origin updates\n\n",
		numCaches, numGroups, len(requests), len(updates))
	fmt.Printf("%-16s %14s %14s %14s %10s\n", "scheme", "all (ms)", "near-10% (ms)", "far-10% (ms)", "group hits")

	for _, cfg := range []ecg.SchemeConfig{
		ecg.SL(landmarks, plsetM),
		ecg.SDSL(landmarks, plsetM, theta),
	} {
		gf, err := ecg.NewCoordinator(nw, prober, cfg, src.Split("gf/"+cfg.Name()))
		if err != nil {
			return fmt.Errorf("%s coordinator: %w", cfg.Name(), err)
		}
		plan, err := gf.FormGroups(numGroups)
		if err != nil {
			return fmt.Errorf("%s form groups: %w", cfg.Name(), err)
		}
		sim, err := ecg.NewSimulator(nw, plan.Groups(), catalog, ecg.DefaultSimConfig())
		if err != nil {
			return fmt.Errorf("%s simulator: %w", cfg.Name(), err)
		}
		rep, err := sim.Run(requests, updates)
		if err != nil {
			return fmt.Errorf("%s run: %w", cfg.Name(), err)
		}
		_, groupRate, _ := rep.HitRates()
		fmt.Printf("%-16s %14.1f %14.1f %14.1f %9.1f%%\n",
			cfg.Name(), rep.MeanLatency(), rep.MeanLatencyOf(near), rep.MeanLatencyOf(far), groupRate*100)
	}

	fmt.Println("\nSDSL builds compact groups near the origin (cheap misses there) and")
	fmt.Println("larger groups far away (high hit rates where origin fetches hurt most).")
	return nil
}
