// Cooperative caching under failures and membership churn.
//
// The program forms SDSL groups, then demonstrates two operational
// features of the library:
//
//  1. failure injection — a fraction of the caches goes down; the
//     simulator routes their clients to the origin and excludes them from
//     cooperative lookups. The report shows the latency and hit-rate
//     degradation.
//
//  2. incremental membership — a new cache joins the network; instead of
//     re-clustering everything, it probes the existing landmarks and is
//     assigned to the nearest group's center (Plan.AssignPoint).
//
//     go run ./examples/cooperative
package main

import (
	"fmt"
	"log"

	ecg "edgecachegroups"
)

const (
	numCaches = 150
	numGroups = 15
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src := ecg.NewRand(33)

	graph, err := ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topology"))
	if err != nil {
		return fmt.Errorf("generate topology: %w", err)
	}
	// Place one extra cache: index numCaches acts as the late joiner.
	nw, err := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: numCaches + 1}, src.Split("placement"))
	if err != nil {
		return fmt.Errorf("place network: %w", err)
	}
	prober, err := ecg.NewProber(nw, ecg.DefaultProbeConfig(), src.Split("probe"))
	if err != nil {
		return fmt.Errorf("build prober: %w", err)
	}
	gf, err := ecg.NewCoordinator(nw, prober, ecg.SDSL(12, 4, 1.0), src.Split("coordinator"))
	if err != nil {
		return fmt.Errorf("build coordinator: %w", err)
	}
	plan, err := gf.FormGroups(numGroups)
	if err != nil {
		return fmt.Errorf("form groups: %w", err)
	}

	catalog, err := ecg.NewCatalog(ecg.DefaultCatalogParams(), src.Split("catalog"))
	if err != nil {
		return fmt.Errorf("build catalog: %w", err)
	}
	traceParams := ecg.TraceParams{DurationSec: 240, RequestRatePerCache: 1, Similarity: 0.85}
	requests, err := ecg.GenerateRequests(catalog, numCaches+1, traceParams, src.Split("requests"))
	if err != nil {
		return fmt.Errorf("generate requests: %w", err)
	}
	updates, err := ecg.GenerateUpdates(catalog, traceParams.DurationSec, src.Split("updates"))
	if err != nil {
		return fmt.Errorf("generate updates: %w", err)
	}

	// Part 1: failure injection sweep.
	fmt.Println("=== failure injection ===")
	fmt.Printf("%-14s %12s %12s %12s %12s\n", "failed caches", "mean (ms)", "local", "group", "origin")
	for _, failed := range []int{0, 8, 15, 30} {
		cfg := ecg.DefaultSimConfig()
		idx, err := src.SplitN("failures", failed).SampleWithoutReplacement(numCaches, failed)
		if err != nil {
			return fmt.Errorf("pick failed caches: %w", err)
		}
		for _, f := range idx {
			cfg.FailedCaches = append(cfg.FailedCaches, ecg.CacheIndex(f))
		}
		sim, err := ecg.NewSimulator(nw, plan.Groups(), catalog, cfg)
		if err != nil {
			return fmt.Errorf("build simulator: %w", err)
		}
		rep, err := sim.Run(requests, updates)
		if err != nil {
			return fmt.Errorf("run simulation: %w", err)
		}
		l, g, o := rep.HitRates()
		fmt.Printf("%-14d %12.1f %11.1f%% %11.1f%% %11.1f%%\n",
			failed, rep.MeanLatency(), l*100, g*100, o*100)
	}

	// Part 2: incremental membership. The joiner probes the plan's
	// landmarks to build its feature vector, then joins the nearest group
	// without re-clustering the other caches.
	fmt.Println("\n=== incremental join ===")
	joiner := ecg.CacheIndex(numCaches)
	feature, err := prober.MeasureTo(ecg.CacheEndpoint(joiner), plan.Landmarks)
	if err != nil {
		return fmt.Errorf("probe landmarks for joiner: %w", err)
	}
	group, err := plan.AssignPoint(ecg.FeatureVector(feature))
	if err != nil {
		return fmt.Errorf("assign joiner: %w", err)
	}
	members, err := plan.Group(group)
	if err != nil {
		return fmt.Errorf("read group: %w", err)
	}
	var sum float64
	for _, m := range members {
		sum += nw.Dist(joiner, m)
	}
	fmt.Printf("cache %d joins group %d (%d members, mean RTT to members %.1fms)\n",
		joiner, group, len(members), sum/float64(len(members)))
	fmt.Printf("network-wide mean cache-pair RTT for comparison: %.1fms\n", nw.MeanPairwiseDist())
	return nil
}
