package main

import "testing"

// TestRunSucceeds smoke-tests the example end to end.
func TestRunSucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("example runs a full pipeline")
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
