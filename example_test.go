package ecg_test

import (
	"fmt"

	ecg "edgecachegroups"
)

// Example demonstrates the minimal group formation pipeline: build a
// topology, place the edge cache network, probe landmarks, and form
// cooperative groups with the SL scheme.
func Example() {
	src := ecg.NewRand(7)
	graph, err := ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topology"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	nw, err := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: 60}, src.Split("placement"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	prober, err := ecg.NewProber(nw, ecg.DefaultProbeConfig(), src.Split("probe"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	gf, err := ecg.NewCoordinator(nw, prober, ecg.SL(8, 4), src.Split("gf"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	plan, err := gf.FormGroups(6)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("groups: %d, caches: %d\n", plan.NumGroups(), plan.NumCaches())
	// Output:
	// groups: 6, caches: 60
}

// ExampleSDSL shows the server-distance-sensitive scheme: a larger theta
// concentrates more, smaller groups near the origin server.
func ExampleSDSL() {
	cfg := ecg.SDSL(25, 4, 1.5)
	fmt.Println(cfg.Name())
	fmt.Println(cfg.Theta)
	// Output:
	// SDSL(theta=1.5)
	// 1.5
}

// ExampleGroupInteractionCost evaluates a hand-made partition on a tiny
// explicit topology.
func ExampleGroupInteractionCost() {
	g := ecg.NewGraph()
	origin := g.AddNode(ecg.KindStub, 0)
	a := g.AddNode(ecg.KindStub, 0)
	b := g.AddNode(ecg.KindStub, 0)
	if err := g.AddEdge(origin, a, 10); err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := g.AddEdge(a, b, 4); err != nil {
		fmt.Println("error:", err)
		return
	}
	nw, err := ecg.NewNetworkAt(g, origin, []ecg.NodeID{a, b})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cost := ecg.GroupInteractionCost(nw, []ecg.CacheIndex{0, 1})
	fmt.Printf("%.1f ms\n", cost)
	// Output:
	// 4.0 ms
}

// ExampleCoordinator_FormGroups runs SDSL and reports how group sizes vary
// with distance from the origin server.
func ExampleCoordinator_FormGroups() {
	src := ecg.NewRand(21)
	graph, err := ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topology"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	nw, err := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: 100}, src.Split("placement"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	prober, err := ecg.NewProber(nw, ecg.DefaultProbeConfig(), src.Split("probe"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	gf, err := ecg.NewCoordinator(nw, prober, ecg.SDSL(10, 4, 2), src.Split("gf"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	plan, err := gf.FormGroups(10)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	total := 0
	for _, s := range plan.Sizes() {
		total += s
	}
	fmt.Printf("covered: %d caches in %d groups\n", total, plan.NumGroups())
	// Output:
	// covered: 100 caches in 10 groups
}
