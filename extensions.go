package ecg

import (
	"io"

	"edgecachegroups/internal/cache"
	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/core"
	"edgecachegroups/internal/landmark"
	"edgecachegroups/internal/netsim"
	"edgecachegroups/internal/serve"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/workload"
)

// Extensions beyond the paper's core pipeline: an alternative flat
// topology model, topology serialization, an alternative clustering
// algorithm, clustering quality diagnostics, flash-crowd workloads, and
// per-group simulation statistics.

// Waxman topology (flat random Internet model).
type (
	// WaxmanParams configures the flat Waxman topology generator.
	WaxmanParams = topology.WaxmanParams
)

// DefaultWaxmanParams returns a 600-router Waxman configuration comparable
// to the default transit-stub topology.
func DefaultWaxmanParams() WaxmanParams { return topology.DefaultWaxmanParams() }

// GenerateWaxman builds a connected flat Waxman topology.
func GenerateWaxman(params WaxmanParams, src *Rand) (*Graph, error) {
	return topology.GenerateWaxman(params, src)
}

// WriteGraphJSON serializes a topology graph to w.
func WriteGraphJSON(w io.Writer, g *Graph) error { return g.WriteJSON(w) }

// ReadGraphJSON deserializes a topology graph written by WriteGraphJSON.
func ReadGraphJSON(r io.Reader) (*Graph, error) { return topology.ReadGraphJSON(r) }

// Clustering algorithm selection.
type (
	// ClusterAlgorithm selects K-means or K-medoids for the clustering
	// step.
	ClusterAlgorithm = core.Algorithm
)

// Clustering algorithms.
const (
	AlgoKMeans   = core.AlgoKMeans
	AlgoKMedoids = core.AlgoKMedoids
)

// Silhouette returns the mean silhouette coefficient of a partition in the
// clustered feature space — a clustering-quality diagnostic in [-1, 1].
func Silhouette(points []FeatureVector, assignments []int, k int) (float64, error) {
	return cluster.Silhouette(points, assignments, k)
}

// SilhouetteParallel is Silhouette with its O(N²) distance loop fanned out
// over at most workers goroutines (0 or 1 means serial). The coefficient
// is bit-identical for every worker count.
func SilhouetteParallel(points []FeatureVector, assignments []int, k, workers int) (float64, error) {
	return cluster.SilhouetteParallel(points, assignments, k, workers)
}

// SuggestK runs the clustering for k = 1..kMax and returns the elbow of
// the within-cluster-SS curve plus the curve itself — a starting point for
// choosing the paper's "pre-specified parameter" K.
func SuggestK(points []FeatureVector, kMax int, src *Rand) (int, []float64, error) {
	return cluster.SuggestK(points, kMax, cluster.UniformSeeder{}, cluster.DefaultOptions(), src)
}

// SuggestKParallel is SuggestK with the kMax independent clustering runs
// fanned out over at most workers goroutines (0 or 1 means serial), each
// drawing from its own deterministic substream: the suggestion and curve
// are bit-identical for every worker count.
func SuggestKParallel(points []FeatureVector, kMax, workers int, src *Rand) (int, []float64, error) {
	opts := cluster.DefaultOptions()
	opts.Parallelism = workers
	return cluster.SuggestK(points, kMax, cluster.UniformSeeder{}, opts, src)
}

// Flash-crowd workloads.
type (
	// FlashCrowdParams describes a flash-crowd episode.
	FlashCrowdParams = workload.FlashCrowdParams
	// FlashCrowd is a materialized flash-crowd episode.
	FlashCrowd = workload.FlashCrowd
)

// NewFlashCrowd draws the hot document set for a flash-crowd episode.
func NewFlashCrowd(c *Catalog, params FlashCrowdParams, src *Rand) (*FlashCrowd, error) {
	return workload.NewFlashCrowd(c, params, src)
}

// Per-group simulation statistics.
type (
	// GroupStat aggregates per-cooperative-group simulation counters.
	GroupStat = netsim.GroupStat
)

// Cache replacement policies.
type (
	// CachePolicy selects the per-cache replacement policy.
	CachePolicy = cache.Policy
)

// Replacement policies.
const (
	PolicyUtility = cache.PolicyUtility
	PolicyLRU     = cache.PolicyLRU
)

// VivaldiScheme returns the SL pipeline with Vivaldi spring-relaxation
// coordinates instead of raw feature vectors (paper reference [3]).
func VivaldiScheme(l, m, dim int) SchemeConfig { return core.VivaldiScheme(l, m, dim) }

// RepresentationVivaldi selects Vivaldi coordinates for clustering.
const RepresentationVivaldi = core.Vivaldi

// OracleLandmarks is an idealized landmark selector with free global
// knowledge of true RTTs — an accuracy ceiling for ablations, not a
// deployable strategy.
type OracleLandmarks = landmark.Oracle

// Group-size balancing.
type (
	// BalanceOptions constrains group sizes after clustering.
	BalanceOptions = core.BalanceOptions
)

// Trace statistics.
type (
	// TraceStats summarizes a request log.
	TraceStats = workload.TraceStats
)

// AnalyzeRequests computes summary statistics for a request log.
func AnalyzeRequests(reqs []Request) (*TraceStats, error) {
	return workload.AnalyzeRequests(reqs)
}

// Router-level paths.
type (
	// PathTree is a single-source shortest-path tree with extractable
	// router-level paths.
	PathTree = topology.ShortestPathTree
)

// Group maintenance.
type (
	// Maintainer keeps a Plan aligned with drifting network conditions.
	Maintainer = core.Maintainer
	// MaintainerConfig tunes maintenance rounds.
	MaintainerConfig = core.MaintainerConfig
	// MaintainerEvent describes one maintenance round's outcome.
	MaintainerEvent = core.MaintainerEvent
	// FeatureSource measures a cache's current feature vector.
	FeatureSource = core.FeatureSource
)

// DefaultMaintainerConfig returns sensible maintenance defaults.
func DefaultMaintainerConfig() MaintainerConfig { return core.DefaultMaintainerConfig() }

// NewMaintainer builds a group maintainer over plan.
func NewMaintainer(plan *Plan, source FeatureSource, recluster func() (*Plan, error), cfg MaintainerConfig, src *Rand) (*Maintainer, error) {
	return core.NewMaintainer(plan, source, recluster, cfg, src)
}

// Serving (the groupformd daemon layer).
type (
	// ServeEngine is the long-running group-formation service: ingests
	// per-cache stats, maintains the plan incrementally, and serves
	// queries from immutable copy-on-write plan epochs.
	ServeEngine = serve.Engine
	// ServeConfig configures a ServeEngine.
	ServeConfig = serve.Config
	// PlanEpoch is one immutable published plan generation.
	PlanEpoch = serve.Epoch
	// CacheStat is one per-cache ingest record (RTT vector + request count).
	CacheStat = serve.CacheStat
	// ServeHealth is the daemon's /healthz body (ok / degraded / down).
	ServeHealth = serve.Health
	// ServeServer is a live daemon endpoint (engine loop + HTTP listener).
	ServeServer = serve.Server
)

// NewServeEngine builds the serving engine and publishes the boot plan.
func NewServeEngine(cfg ServeConfig) (*ServeEngine, error) { return serve.NewEngine(cfg) }

// ServeGroups binds addr, starts the engine's maintenance loop, and serves
// the daemon API (plus the obs endpoints when o is non-nil).
func ServeGroups(addr string, e *ServeEngine, o *Obs) (*ServeServer, error) {
	return serve.Serve(addr, e, o)
}

// SavePlanSnapshot persists an epoch crash-safely (tmp + fsync + rename).
func SavePlanSnapshot(path string, ep *PlanEpoch) error { return serve.SaveSnapshot(path, ep) }

// LoadPlanSnapshot reloads a persisted epoch, verifying plan invariants
// and the recorded checksum.
func LoadPlanSnapshot(path string) (*PlanEpoch, error) { return serve.LoadSnapshot(path) }

// Request tracing.
type (
	// RequestTrace describes one served request for SimConfig.TraceFn.
	RequestTrace = netsim.RequestTrace
	// RequestOutcome classifies a request's routing.
	RequestOutcome = netsim.Outcome
)

// Request outcomes.
const (
	OutcomeLocal    = netsim.OutcomeLocal
	OutcomeGroup    = netsim.OutcomeGroup
	OutcomeOrigin   = netsim.OutcomeOrigin
	OutcomeFailover = netsim.OutcomeFailover
)
