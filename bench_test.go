package ecg_test

// Benchmark harness: one benchmark per figure of the paper's evaluation
// section (Figures 3-9), the ablation benches called out in DESIGN.md, and
// micro-benchmarks of the hot substrate paths.
//
// The figure benches run the full experiment at reduced scale per
// iteration; run with a larger -benchscale (see benchOptions) or use
// cmd/ecgsim for the paper-scale numbers recorded in EXPERIMENTS.md.

import (
	"os"
	"testing"

	ecg "edgecachegroups"
	"edgecachegroups/internal/cluster"
	"edgecachegroups/internal/core"
	"edgecachegroups/internal/experiments"
	"edgecachegroups/internal/gnp"
	"edgecachegroups/internal/landmark"
	"edgecachegroups/internal/lint"
	"edgecachegroups/internal/netsim"
	"edgecachegroups/internal/probe"
	"edgecachegroups/internal/simrand"
	"edgecachegroups/internal/topology"
	"edgecachegroups/internal/vivaldi"
	"edgecachegroups/internal/workload"
)

// benchOptions returns the scaled-down experiment options used by the
// figure benchmarks.
func benchOptions() experiments.Options {
	return experiments.Options{Seed: 1, Scale: 0.12, Parallelism: 4, Trials: 1}
}

func BenchmarkFig3GroupSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4LandmarkSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5GroupCountSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6LandmarkCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Representation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SDSLNetworkSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9SDSLGroupSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTheta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTheta(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPLSetM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPLSetM(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationProbeNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationProbeNoise(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFailures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFailures(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the substrate hot paths ---

func benchTopology(b *testing.B) *topology.Graph {
	b.Helper()
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStubParams(), simrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkTopologyGenerate(b *testing.B) {
	params := topology.DefaultTransitStubParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := topology.GenerateTransitStub(params, simrand.New(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDijkstra(b *testing.B) {
	g := benchTopology(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ShortestPaths(topology.NodeID(i % g.NumNodes())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbeMeasure(b *testing.B) {
	g := benchTopology(b)
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: 100}, simrand.New(2))
	if err != nil {
		b.Fatal(err)
	}
	p, err := probe.NewProber(nw, probe.DefaultConfig(), simrand.New(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Measure(probe.Cache(topology.CacheIndex(i%100)), probe.Origin()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans500x25(b *testing.B) {
	src := simrand.New(4)
	points := make([]cluster.Vector, 500)
	for i := range points {
		points[i] = make(cluster.Vector, 25)
		for j := range points[i] {
			points[i][j] = src.Uniform(0, 300)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(points, 50, cluster.UniformSeeder{}, cluster.DefaultOptions(), src.SplitN("km", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchKMeansParallel runs the 500×25 K-means at a fixed worker-pool bound.
// Compare Par1 vs Par8 for the parallel-pipeline speedup (results are
// bit-identical across the pair; only wall-clock changes).
func benchKMeansParallel(b *testing.B, workers int) {
	src := simrand.New(4)
	points := make([]cluster.Vector, 500)
	for i := range points {
		points[i] = make(cluster.Vector, 25)
		for j := range points[i] {
			points[i][j] = src.Uniform(0, 300)
		}
	}
	opts := cluster.DefaultOptions()
	opts.Parallelism = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(points, 50, cluster.UniformSeeder{}, opts, src.SplitN("km", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeansPar1(b *testing.B) { benchKMeansParallel(b, 1) }
func BenchmarkKMeansPar8(b *testing.B) { benchKMeansParallel(b, 8) }

// benchBlobMatrix builds an n×dim flat feature matrix of points scattered
// around `blobs` well-separated centers — the clustered geometry real
// landmark-RTT feature sets exhibit, and the regime where bounds pruning
// is representative.
func benchBlobMatrix(n, dim, blobs int, src *simrand.Source) cluster.Matrix {
	centers := cluster.NewMatrix(blobs, dim)
	for c := 0; c < blobs; c++ {
		row := centers.Row(c)
		for j := range row {
			row[j] = src.Uniform(0, 300)
		}
	}
	m := cluster.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		c := centers.Row(i % blobs)
		row := m.Row(i)
		for j := range row {
			row[j] = c[j] + src.Uniform(-12, 12)
		}
	}
	return m
}

// benchKMeansFlat runs the large-N flat-matrix K-means (100k×16, k=64) at
// the given prune mode. Results are bit-identical across all modes (pinned
// by the cluster golden tests); only wall clock and the distance-evaluation
// count change. The mean DistEvals per op is reported as "distevals/op" so
// the pruning win is a committed, diffable number in BENCH_pipeline.json.
func benchKMeansFlat(b *testing.B, mode cluster.PruneMode) {
	src := simrand.New(16)
	points := benchBlobMatrix(100_000, 16, 64, src)
	opts := cluster.DefaultOptions()
	opts.Prune = mode
	var evals int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cluster.KMeansMatrix(points, 64, cluster.UniformSeeder{}, opts, src.SplitN("km", i))
		if err != nil {
			b.Fatal(err)
		}
		evals += res.DistEvals
	}
	b.ReportMetric(float64(evals)/float64(b.N), "distevals/op")
}

func BenchmarkKMeansFlatExhaustive(b *testing.B) { benchKMeansFlat(b, cluster.PruneNone) }
func BenchmarkKMeansFlatPruned(b *testing.B)     { benchKMeansFlat(b, cluster.PruneHamerly) }
func BenchmarkKMeansFlatElkan(b *testing.B)      { benchKMeansFlat(b, cluster.PruneElkan) }

// BenchmarkFeatureBuild measures the probe→flat-feature-matrix assembly —
// core.MeasureFeatureMatrix, the exact path FormGroups runs — and guards
// (Obs-style, inline) that building features for N caches performs O(1)
// slice allocations: the flat matrix replaces the per-cache vector
// allocations, and the per-worker probe.Measurer replaces the per-probe
// RNG allocations, so the allocation count must not grow with N.
func BenchmarkFeatureBuild(b *testing.B) {
	g := benchTopology(b)
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: 200}, simrand.New(17))
	if err != nil {
		b.Fatal(err)
	}
	cfg := probe.DefaultConfig()
	cfg.Parallelism = 1
	p, err := probe.NewProber(nw, cfg, simrand.New(18))
	if err != nil {
		b.Fatal(err)
	}
	lms := []probe.Endpoint{
		probe.Origin(), probe.Cache(0), probe.Cache(20), probe.Cache(40),
		probe.Cache(80), probe.Cache(120), probe.Cache(160), probe.Cache(199),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.MeasureFeatureMatrix(p, 200, lms, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	allocsFor := func(n int) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, _, err := core.MeasureFeatureMatrix(p, n, lms, 1); err != nil {
				b.Fatal(err)
			}
		})
	}
	a50, a200 := allocsFor(50), allocsFor(200)
	if a200 > a50+1 {
		b.Fatalf("feature build allocations scale with N: %v allocs for N=50 vs %v for N=200, want O(1)", a50, a200)
	}
}

func BenchmarkGNPEmbedHost(b *testing.B) {
	src := simrand.New(5)
	landmarks := make([][]float64, 25)
	toLm := make([]float64, 25)
	for i := range landmarks {
		landmarks[i] = []float64{src.Uniform(0, 300), src.Uniform(0, 300), src.Uniform(0, 300), src.Uniform(0, 300), src.Uniform(0, 300)}
		toLm[i] = src.Uniform(10, 300)
	}
	cfg := gnp.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gnp.EmbedHost(landmarks, toLm, cfg, src.SplitN("host", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGNPEmbedHosts runs the phase-2 batch embedding of 200 hosts against
// 25 landmarks at a fixed worker-pool bound. The per-host RNG streams make
// the result worker-count-invariant.
func benchGNPEmbedHosts(b *testing.B, workers int) {
	src := simrand.New(5)
	landmarks := make([][]float64, 25)
	for i := range landmarks {
		landmarks[i] = []float64{src.Uniform(0, 300), src.Uniform(0, 300), src.Uniform(0, 300), src.Uniform(0, 300), src.Uniform(0, 300)}
	}
	toLm := make([][]float64, 200)
	for h := range toLm {
		toLm[h] = make([]float64, 25)
		for i := range toLm[h] {
			toLm[h][i] = src.Uniform(10, 300)
		}
	}
	cfg := gnp.DefaultConfig()
	cfg.Parallelism = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gnp.EmbedHosts(landmarks, toLm, cfg, src.SplitN("batch", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGNPEmbedHosts1(b *testing.B) { benchGNPEmbedHosts(b, 1) }
func BenchmarkGNPEmbedHosts8(b *testing.B) { benchGNPEmbedHosts(b, 8) }

func BenchmarkGreedyLandmarkSelection(b *testing.B) {
	g := benchTopology(b)
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: 500}, simrand.New(6))
	if err != nil {
		b.Fatal(err)
	}
	p, err := probe.NewProber(nw, probe.DefaultConfig(), simrand.New(7))
	if err != nil {
		b.Fatal(err)
	}
	params := landmark.Params{L: 25, M: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (landmark.Greedy{}).Select(p, 500, params, simrand.New(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFormGroupsSL500(b *testing.B) {
	g := benchTopology(b)
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: 500}, simrand.New(8))
	if err != nil {
		b.Fatal(err)
	}
	p, err := probe.NewProber(nw, probe.DefaultConfig(), simrand.New(9))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gf, err := core.NewCoordinator(nw, p, core.SL(25, 4), simrand.New(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gf.FormGroups(50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	g := benchTopology(b)
	const n = 200
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: n}, simrand.New(10))
	if err != nil {
		b.Fatal(err)
	}
	catalog, err := workload.NewCatalog(workload.DefaultCatalogParams(), simrand.New(11))
	if err != nil {
		b.Fatal(err)
	}
	tp := workload.TraceParams{DurationSec: 120, RequestRatePerCache: 1, Similarity: 0.8}
	reqs, err := workload.GenerateRequests(catalog, n, tp, simrand.New(12))
	if err != nil {
		b.Fatal(err)
	}
	ups, err := workload.GenerateUpdates(catalog, 120, simrand.New(13))
	if err != nil {
		b.Fatal(err)
	}
	groups := make([][]topology.CacheIndex, 20)
	for i := 0; i < n; i++ {
		groups[i%20] = append(groups[i%20], topology.CacheIndex(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := netsim.New(nw, groups, catalog, netsim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(reqs, ups); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reqs)), "requests/op")
}

// benchSimShards measures the sharded simulator at a fixed workload and the
// given shard count. The Shards1/2/4/8 quartet feeds benchjson's speedup
// derivation; on a single-CPU host the multi-shard numbers mostly price the
// window-barrier overhead rather than show wall-clock wins.
func benchSimShards(b *testing.B, shards int) {
	g := benchTopology(b)
	const n = 240
	nw, err := topology.NewNetwork(g, topology.PlaceParams{NumCaches: n}, simrand.New(20))
	if err != nil {
		b.Fatal(err)
	}
	catalog, err := workload.NewCatalog(workload.DefaultCatalogParams(), simrand.New(21))
	if err != nil {
		b.Fatal(err)
	}
	tp := workload.TraceParams{DurationSec: 120, RequestRatePerCache: 1, Similarity: 0.8}
	reqs, err := workload.GenerateRequests(catalog, n, tp, simrand.New(22))
	if err != nil {
		b.Fatal(err)
	}
	ups, err := workload.GenerateUpdates(catalog, 120, simrand.New(23))
	if err != nil {
		b.Fatal(err)
	}
	groups := make([][]topology.CacheIndex, 24)
	for i := 0; i < n; i++ {
		groups[i%24] = append(groups[i%24], topology.CacheIndex(i))
	}
	cfg := netsim.DefaultConfig()
	cfg.Shards = shards
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := netsim.New(nw, groups, catalog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(reqs, ups); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reqs)), "requests/op")
}

func BenchmarkSimShards1(b *testing.B) { benchSimShards(b, 1) }
func BenchmarkSimShards2(b *testing.B) { benchSimShards(b, 2) }
func BenchmarkSimShards4(b *testing.B) { benchSimShards(b, 4) }
func BenchmarkSimShards8(b *testing.B) { benchSimShards(b, 8) }

// BenchmarkFacadePipeline exercises the full public-API pipeline once per
// iteration, as a downstream user would run it.
func BenchmarkFacadePipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		src := ecg.NewRand(int64(i))
		graph, err := ecg.GenerateTransitStub(ecg.DefaultTransitStubParams(), src.Split("topo"))
		if err != nil {
			b.Fatal(err)
		}
		nw, err := ecg.NewNetwork(graph, ecg.PlaceParams{NumCaches: 100}, src.Split("place"))
		if err != nil {
			b.Fatal(err)
		}
		prober, err := ecg.NewProber(nw, ecg.DefaultProbeConfig(), src.Split("probe"))
		if err != nil {
			b.Fatal(err)
		}
		gf, err := ecg.NewCoordinator(nw, prober, ecg.SDSL(10, 4, 1), src.Split("gf"))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gf.FormGroups(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionRepresentations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RepresentationStudy(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionBeacons(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBeacons(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionCachePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCachePolicy(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionSubstrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SubstrateStudy(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVivaldiEmbedHost(b *testing.B) {
	src := simrand.New(14)
	landmarks := make([][]float64, 25)
	toLm := make([]float64, 25)
	for i := range landmarks {
		landmarks[i] = []float64{src.Uniform(0, 300), src.Uniform(0, 300), src.Uniform(0, 300), src.Uniform(0, 300), src.Uniform(0, 300)}
		toLm[i] = src.Uniform(10, 300)
	}
	cfg := vivaldi.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vivaldi.EmbedHost(landmarks, toLm, cfg, src.SplitN("host", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMedoids500x25(b *testing.B) {
	src := simrand.New(15)
	points := make([]cluster.Vector, 500)
	for i := range points {
		points[i] = make(cluster.Vector, 25)
		for j := range points[i] {
			points[i][j] = src.Uniform(0, 300)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMedoids(points, 50, cluster.UniformSeeder{}, cluster.DefaultOptions(), src.SplitN("km", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionProbeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ProbeOverheadStudy(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionFreshness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FreshnessStudy(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsHistogram measures the enabled histogram record path — the
// per-request cost the simulator pays at merge time when an Obs sink is
// attached. The contract is 0 allocs/op (pinned hard by the
// AllocsPerRun guard in internal/obs).
func BenchmarkObsHistogram(b *testing.B) {
	o := ecg.NewObs()
	h := o.Registry().Histogram("bench_latency_ms")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(float64(i%1000) + 0.5)
	}
	if a := testing.AllocsPerRun(100, func() { h.Record(42) }); a != 0 {
		b.Fatalf("enabled Record allocates %v per op, want 0", a)
	}
}

// BenchmarkObsDisabled measures the disabled path: the same record call
// against nil handles, which is what every instrumented site costs when
// no -obs-addr sink is attached. This must stay within a couple of
// nanoseconds (a nil check), so observability never taxes obs-free runs.
func BenchmarkObsDisabled(b *testing.B) {
	var o *ecg.Obs // disabled: all derived handles are nil and no-op
	h := o.Registry().Histogram("bench_latency_ms")
	c := o.Registry().Counter("bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(float64(i))
		c.Inc()
	}
	if a := testing.AllocsPerRun(100, func() { h.Record(42); c.Inc() }); a != 0 {
		b.Fatalf("disabled path allocates %v per op, want 0", a)
	}
}

// BenchmarkEcglintModule times a full-module run of the interprocedural
// lint engine — load, type-check, call-graph construction, summary
// fixpoint, and all analyzers over every non-testdata package. This is
// the cost a CI lint gate pays per invocation; tracked non-blocking so
// engine growth (new rules, deeper summaries) stays visible in the
// baseline without failing builds.
func BenchmarkEcglintModule(b *testing.B) {
	cwd, err := os.Getwd()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkgs, err := lint.Load(cwd, []string{"./..."})
		if err != nil {
			b.Fatal(err)
		}
		if findings := lint.Run(pkgs, lint.Analyzers()); len(findings) != 0 {
			b.Fatalf("module is not lint-clean: %d findings", len(findings))
		}
	}
}
